"""Device models: what a simulated host *is* and how it answers probes.

A :class:`Device` bundles

* a **service surface** — which protocol services it binds (web UI,
  SSH, broker, CoAP resource directory) and with what configuration
  (page title, TLS certificate, SSH banner + host key, broker access
  control, advertised resources);
* an **addressing mode** — how its interface identifier is formed
  (EUI-64 with a vendor MAC, SLAAC privacy, structured server-style);
* **NTP behaviour** — whether and how often it synchronizes against the
  pool (only NTP speakers can ever be collected by the paper's method);
* **reachability** — whether inbound connections get through at all
  (end-user CPEs mostly drop unsolicited traffic, which is why the
  paper's NTP-sourced scans have a ~0.4 permille hit rate).

The catalogue of concrete device types the paper observes (FRITZ!Box,
D-LINK, Raspbian hosts, castdevice CoAP endpoints, CDN fronts, …) is
assembled in :mod:`repro.world.population`; this module provides the
building blocks and per-type constructors.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.ipv6 import address as addrmod
from repro.ipv6 import eui64
from repro.net.simnet import Network
from repro.proto.amqp import AmqpSessionFactory
from repro.proto.coap import CoapResourceServer
from repro.proto.http import HttpSessionFactory
from repro.proto.mqtt import MqttSessionFactory
from repro.proto.ssh import SshIdentification, SshSessionFactory
from repro.proto.tls_session import PlainService, TlsService
from repro.tlslib.certificate import Certificate, issue_public, issue_self_signed
from repro.tlslib.handshake import TlsTerminator
from repro.tlslib.keys import KeyIdentity, derive_key

#: Well-known ports, matching the paper's scan targets (Table 2).
PORT_HTTP = 80
PORT_HTTPS = 443
PORT_SSH = 22
PORT_MQTT = 1883
PORT_MQTTS = 8883
PORT_AMQP = 5672
PORT_AMQPS = 5671
PORT_COAP = 5683

#: Addressing modes a device can use for its interface identifier.
ADDRESSING_MODES = ("eui64", "privacy", "structured", "low-byte", "zero")


@dataclass
class WebConfig:
    """Configuration of a device's HTTP(S) surface."""

    title: Optional[str]
    status: int = 200
    https: bool = False
    certificate: Optional[Certificate] = None
    sni_required: bool = False
    server_header: str = "sim-httpd/1.0"


@dataclass
class SshConfig:
    """Configuration of a device's SSH surface."""

    identification: SshIdentification
    host_key: KeyIdentity


@dataclass
class BrokerConfig:
    """Configuration of an MQTT or AMQP broker surface."""

    require_auth: bool
    tls: bool = False
    certificate: Optional[Certificate] = None


@dataclass
class CoapConfig:
    """Configuration of a device's CoAP surface."""

    resources: Tuple[str, ...]


@dataclass
class Device:
    """One simulated host with stable identity across address changes."""

    type_name: str
    addressing: str
    #: Vendor MAC for EUI-64 devices (None otherwise).
    mac: Optional[int] = None
    #: Mean seconds between NTP pool queries; None = not an NTP client.
    ntp_interval: Optional[float] = None
    #: Whether inbound connections reach the device's services.
    reachable: bool = True
    web: Optional[WebConfig] = None
    ssh: Optional[SshConfig] = None
    mqtt: Optional[BrokerConfig] = None
    amqp: Optional[BrokerConfig] = None
    coap: Optional[CoapConfig] = None
    #: Attributes the analyses treat as ground truth (for validation).
    labels: Dict[str, str] = field(default_factory=dict)

    # Populated by the world builder:
    country: str = ""
    asn: int = 0
    prefix64: int = 0
    address: int = 0

    @property
    def is_ntp_client(self) -> bool:
        return self.ntp_interval is not None

    @property
    def has_services(self) -> bool:
        return any((self.web, self.ssh, self.mqtt, self.amqp, self.coap))

    # -- addressing ----------------------------------------------------

    def make_iid(self, rng: random.Random) -> int:
        """Draw an interface identifier according to the addressing mode."""
        if self.addressing == "eui64":
            if self.mac is None:
                raise ValueError(f"{self.type_name}: eui64 addressing needs a MAC")
            return eui64.mac_to_iid(self.mac)
        if self.addressing == "privacy":
            # RFC 8981 temporary IIDs are uniform random with the U/L
            # bit clear; re-drawing models rotation.
            iid = rng.getrandbits(64) & ~(1 << 57)
            return iid | (1 << 63)  # keep entropy high and non-zero
        if self.addressing == "structured":
            return rng.randrange(0x100, 0x10000)
        if self.addressing == "low-byte":
            # Manual addressing follows conventions: ::1, ::2, ... are
            # far more common than arbitrary low bytes (this is what
            # makes structured server space TGA-extrapolatable).
            if rng.random() < 0.5:
                return rng.randrange(1, 9)
            return rng.randrange(1, 0x100)
        if self.addressing == "zero":
            return 0
        raise ValueError(f"unknown addressing mode {self.addressing!r}")

    def assign_address(self, prefix64: int, rng: random.Random) -> int:
        """(Re-)derive the device's address inside a /64."""
        self.prefix64 = addrmod.prefix(prefix64, 64)
        self.address = addrmod.with_iid(self.prefix64, self.make_iid(rng))
        return self.address

    # -- materialization -------------------------------------------------

    def materialize(self, network: Network) -> None:
        """Bind the device's services at its current address."""
        host = network.add_host(self.address, reachable=self.reachable)
        self.bind_services(host)

    def bind_services(self, host) -> None:
        """Bind this device's service surface onto an arbitrary host
        (also used to put a CDN personality onto aliased /64s).

        Services are bound as *picklable factory objects* (not
        closures), so the parallel scan backend can ship a host's
        service surface to worker processes by value.
        """
        if self.web is not None:
            web = self.web
            host.bind_tcp(PORT_HTTP, PlainService(HttpSessionFactory(
                web.title, status=web.status, server=web.server_header,
                requires_host=web.sni_required,
            )))
            if web.https:
                if web.certificate is None:
                    raise ValueError(f"{self.type_name}: https without certificate")
                terminator = TlsTerminator(
                    web.certificate if not web.sni_required else None,
                    require_sni=web.sni_required,
                    sni_certificates=(
                        {web.certificate.subject: web.certificate}
                        if web.sni_required else None
                    ),
                )
                host.bind_tcp(PORT_HTTPS, TlsService(
                    terminator,
                    HttpSessionFactory(web.title, status=web.status,
                                       server=web.server_header),
                ))
        if self.ssh is not None:
            ssh = self.ssh
            host.bind_tcp(PORT_SSH, PlainService(
                SshSessionFactory(ssh.identification, ssh.host_key)))
        if self.mqtt is not None:
            mqtt = self.mqtt
            host.bind_tcp(PORT_MQTT, PlainService(
                MqttSessionFactory(require_auth=mqtt.require_auth)))
            if mqtt.tls:
                if mqtt.certificate is None:
                    raise ValueError(f"{self.type_name}: mqtts without certificate")
                host.bind_tcp(PORT_MQTTS, TlsService(
                    TlsTerminator(mqtt.certificate),
                    MqttSessionFactory(require_auth=mqtt.require_auth),
                ))
        if self.amqp is not None:
            amqp = self.amqp
            host.bind_tcp(PORT_AMQP, PlainService(
                AmqpSessionFactory(require_auth=amqp.require_auth)))
            if amqp.tls:
                if amqp.certificate is None:
                    raise ValueError(f"{self.type_name}: amqps without certificate")
                host.bind_tcp(PORT_AMQPS, TlsService(
                    TlsTerminator(amqp.certificate),
                    AmqpSessionFactory(require_auth=amqp.require_auth),
                ))
        if self.coap is not None:
            host.bind_udp(PORT_COAP, CoapResourceServer(self.coap.resources))

    def rehome(self, network: Network, new_prefix64: int,
               rng: random.Random) -> int:
        """Move the device to a new /64 (prefix churn), rebinding services."""
        old = self.address
        self.assign_address(new_prefix64, rng)
        if network.host(old) is not None:
            network.move_host(old, self.address)
        else:
            self.materialize(network)
        return self.address

    def rotate_iid(self, network: Network, rng: random.Random) -> int:
        """Privacy-extension rotation: new IID inside the same /64."""
        if self.addressing != "privacy":
            raise ValueError("only privacy-addressed devices rotate IIDs")
        return self.rehome(network, self.prefix64, rng)


# ---------------------------------------------------------------------------
# Per-type constructors.  Each returns an unplaced Device; the world
# builder assigns AS/prefix/country and materializes it.
# ---------------------------------------------------------------------------

def _device_cert(subject: str, key_seed: str, *, public: bool = False,
                 issued_at: float = 0.0) -> Certificate:
    key = derive_key(key_seed, "rsa-2048")
    factory = issue_public if public else issue_self_signed
    return factory(subject, key, issued_at=issued_at)


def make_fritzbox(rng: random.Random, index: int, mac: int) -> Device:
    """An AVM FRITZ!Box home router.

    AVM routers default to NTP, use EUI-64 addresses from AVM OUIs, and
    — crucially for the paper — make it very easy to expose the web UI
    (``myfritz`` remote access), so they are reachable over HTTPS with a
    per-device self-signed certificate.
    """
    cert = _device_cert(f"fritz.box-{index}", f"fritz|{index}|{rng.getrandbits(32)}")
    return Device(
        type_name="fritzbox",
        addressing="eui64",
        mac=mac,
        ntp_interval=3600.0,
        reachable=True,
        web=WebConfig(title="FRITZ!Box", https=True, certificate=cert,
                      server_header="AVM FRITZ!Box"),
        labels={"vendor": "AVM", "segment": "consumer"},
    )


def make_fritz_repeater(rng: random.Random, index: int, mac: int) -> Device:
    """An AVM FRITZ!Repeater (Wi-Fi mesh extender)."""
    cert = _device_cert(f"fritz.repeater-{index}",
                        f"fritzrep|{index}|{rng.getrandbits(32)}")
    return Device(
        type_name="fritz_repeater",
        addressing="eui64",
        mac=mac,
        ntp_interval=3600.0,
        reachable=True,
        web=WebConfig(title="FRITZ!Repeater 6000", https=True,
                      certificate=cert, server_header="AVM FRITZ!Repeater"),
        labels={"vendor": "AVM", "segment": "consumer"},
    )


def make_fritz_powerline(rng: random.Random, index: int, mac: int) -> Device:
    """An AVM FRITZ!Powerline adapter."""
    cert = _device_cert(f"fritz.powerline-{index}",
                        f"fritzpl|{index}|{rng.getrandbits(32)}")
    return Device(
        type_name="fritz_powerline",
        addressing="eui64",
        mac=mac,
        ntp_interval=3600.0,
        reachable=True,
        web=WebConfig(title="FRITZ!Powerline 1260", https=True,
                      certificate=cert, server_header="AVM FRITZ!Powerline"),
        labels={"vendor": "AVM", "segment": "consumer"},
    )


def make_dlink_router(rng: random.Random, index: int, mac: int) -> Device:
    """A D-LINK CPE: web UI with a device certificate, *no* pool NTP.

    D-LINK devices register DNS names (dynamic-DNS services), which is
    how hitlists find them — while their firmware synchronizes against
    a vendor-run NTP server, never the pool.  Hence the paper's stark
    asymmetry: tens of thousands via the hitlist, zero via NTP.
    """
    cert = _device_cert(f"dlinkrouter-{index}",
                        f"dlink|{index}|{rng.getrandbits(32)}")
    return Device(
        type_name="dlink",
        addressing="structured",
        mac=mac,
        ntp_interval=None,
        reachable=True,
        web=WebConfig(title="D-LINK", https=True, certificate=cert,
                      server_header="D-Link Web Server"),
        labels={"vendor": "D-LINK", "segment": "consumer", "dns": "yes"},
    )


def make_cisco_wap(rng: random.Random, index: int, mac: int) -> Device:
    """A Cisco WAP150 consumer/prosumer access point (NTP, no DNS)."""
    cert = _device_cert(f"wap150-{index}", f"wap|{index}|{rng.getrandbits(32)}")
    return Device(
        type_name="cisco_wap",
        addressing="eui64",
        mac=mac,
        ntp_interval=7200.0,
        reachable=True,
        web=WebConfig(
            title="WAP150 Wireless-AC/N Dual Radio Access Point with PoE",
            https=True, certificate=cert, server_header="cisco-AP",
        ),
        labels={"vendor": "Cisco", "segment": "consumer"},
    )


def make_client_device(rng: random.Random, index: int, mac: Optional[int],
                       vendor: str, addressing: str = "eui64") -> Device:
    """A pure NTP *client*: phone, TV, speaker, echo — never scannable.

    These dominate the collected address set (and the EUI-64 vendor
    table) but answer nothing, producing the paper's very low hit rate.
    """
    return Device(
        type_name="client",
        addressing=addressing,
        mac=mac,
        ntp_interval=rng.choice([64.0, 256.0, 1024.0]) * 4,
        reachable=False,
        labels={"vendor": vendor, "segment": "consumer"},
    )


def make_generic_cpe(rng: random.Random, index: int,
                     mac: Optional[int]) -> Device:
    """A locked-down ISP-issued router: NTP client, all inbound dropped."""
    return Device(
        type_name="generic_cpe",
        addressing="eui64" if mac is not None else "privacy",
        mac=mac,
        ntp_interval=3600.0,
        reachable=False,
        labels={"vendor": "generic", "segment": "consumer"},
    )


def make_web_server(rng: random.Random, index: int, *, title: Optional[str],
                    https: bool, public_cert: bool, hostname: str,
                    ntp: bool, type_name: str = "web_server",
                    sni_required: bool = False,
                    segment: str = "server") -> Device:
    """A datacenter web server / hosting page / CDN front."""
    cert = None
    if https:
        cert = _device_cert(hostname, f"web|{hostname}|{index}",
                            public=public_cert)
    return Device(
        type_name=type_name,
        addressing=rng.choice(["low-byte", "structured", "structured"]),
        ntp_interval=86_400.0 if ntp else None,
        reachable=True,
        web=WebConfig(title=title, https=https, certificate=cert,
                      sni_required=sni_required),
        labels={"segment": segment, "dns": "yes"},
    )


def make_ssh_host(rng: random.Random, index: int, *, os_name: str,
                  software: str, comment: Optional[str],
                  host_key: KeyIdentity, ntp: bool,
                  reachable: bool = True, segment: str = "server",
                  addressing: Optional[str] = None,
                  mac: Optional[int] = None,
                  outdated: bool = False) -> Device:
    """A host exposing SSH (server, VM, or a hobbyist Raspberry Pi)."""
    return Device(
        type_name=f"ssh_{os_name.lower()}",
        addressing=addressing or rng.choice(["low-byte", "structured"]),
        mac=mac,
        ntp_interval=3600.0 if ntp else None,
        reachable=reachable,
        ssh=SshConfig(
            identification=SshIdentification("2.0", software, comment),
            host_key=host_key,
        ),
        labels={"os": os_name, "segment": segment,
                "outdated": "yes" if outdated else "no"},
    )


def make_mqtt_broker(rng: random.Random, index: int, *, require_auth: bool,
                     tls: bool, ntp: bool, segment: str) -> Device:
    """An MQTT broker, optionally TLS-enabled and access-controlled."""
    cert = None
    if tls:
        cert = _device_cert(f"mqtt-{index}.sim", f"mqtt|{index}",
                            public=segment == "server")
    return Device(
        type_name="mqtt_broker",
        addressing="structured",
        ntp_interval=3600.0 if ntp else None,
        reachable=True,
        mqtt=BrokerConfig(require_auth=require_auth, tls=tls, certificate=cert),
        labels={"segment": segment,
                "auth": "yes" if require_auth else "no"},
    )


def make_amqp_broker(rng: random.Random, index: int, *, require_auth: bool,
                     tls: bool, ntp: bool, segment: str) -> Device:
    """An AMQP broker (RabbitMQ-style)."""
    cert = None
    if tls:
        cert = _device_cert(f"amqp-{index}.sim", f"amqp|{index}",
                            public=True)
    return Device(
        type_name="amqp_broker",
        addressing="structured",
        ntp_interval=3600.0 if ntp else None,
        reachable=True,
        amqp=BrokerConfig(require_auth=require_auth, tls=tls, certificate=cert),
        labels={"segment": segment,
                "auth": "yes" if require_auth else "no"},
    )


def make_coap_device(rng: random.Random, index: int, *,
                     resources: Sequence[str], group: str,
                     ntp: bool, mac: Optional[int] = None,
                     reachable: bool = True) -> Device:
    """A CoAP endpoint advertising a fixed resource directory."""
    return Device(
        type_name=f"coap_{group}",
        addressing="eui64" if mac is not None else "privacy",
        mac=mac,
        ntp_interval=1800.0 if ntp else None,
        reachable=reachable,
        coap=CoapConfig(resources=tuple(resources)),
        labels={"segment": "iot", "coap_group": group},
    )
