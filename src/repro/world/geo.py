"""Country registry and client-demand weights.

Plays the role of MaxMind's GeoLite2 in the paper (country counts in
Table 5) and of the per-country client populations that determine how
much NTP traffic each pool zone emits (Table 7's India ≫ Netherlands
spread follows from these weights and zone competition).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Country:
    """One country zone of the simulated world."""

    code: str
    name: str
    continent: str
    #: Relative volume of NTP-speaking IPv6 clients.
    client_weight: float
    #: How many *other* pool servers already serve the zone; our server
    #: competes against these for the zone's demand.  Low competition +
    #: high weight is exactly the paper's placement criterion.
    competing_servers: int


#: The paper's 11 deployment countries, plus a tail of non-deployment
#: countries that only contribute via the global zone.  Weights are
#: loosely proportional to routed-IPv6 eyeball populations; competition
#: levels reflect the real pool's very uneven server density.
COUNTRIES: Tuple[Country, ...] = (
    Country("IN", "India", "AS", client_weight=32.0, competing_servers=1),
    Country("BR", "Brazil", "SA", client_weight=9.0, competing_servers=3),
    Country("JP", "Japan", "AS", client_weight=6.5, competing_servers=8),
    Country("ZA", "South Africa", "AF", client_weight=3.2, competing_servers=7),
    Country("ES", "Spain", "EU", client_weight=3.4, competing_servers=9),
    Country("GB", "United Kingdom", "EU", client_weight=5.0, competing_servers=14),
    Country("DE", "Germany", "EU", client_weight=6.0, competing_servers=21),
    Country("US", "United States", "NA", client_weight=8.0, competing_servers=30),
    Country("PL", "Poland", "EU", client_weight=2.6, competing_servers=12),
    Country("AU", "Australia", "OC", client_weight=1.9, competing_servers=17),
    Country("NL", "the Netherlands", "EU", client_weight=1.6, competing_servers=16),
    # Non-deployment countries: their clients reach us only via the
    # global zone fallback, keeping the country column of Table 5 broad.
    Country("FR", "France", "EU", client_weight=4.5, competing_servers=20),
    Country("IT", "Italy", "EU", client_weight=2.8, competing_servers=10),
    Country("CN", "China", "AS", client_weight=7.0, competing_servers=6),
    Country("MX", "Mexico", "NA", client_weight=2.2, competing_servers=4),
    Country("ID", "Indonesia", "AS", client_weight=2.4, competing_servers=3),
    Country("CA", "Canada", "NA", client_weight=1.8, competing_servers=12),
    Country("SE", "Sweden", "EU", client_weight=1.1, competing_servers=11),
    Country("CH", "Switzerland", "EU", client_weight=0.9, competing_servers=13),
    Country("AR", "Argentina", "SA", client_weight=1.3, competing_servers=2),
    Country("KR", "South Korea", "AS", client_weight=2.1, competing_servers=5),
    Country("TH", "Thailand", "AS", client_weight=1.5, competing_servers=3),
    Country("VN", "Vietnam", "AS", client_weight=1.7, competing_servers=2),
    Country("EG", "Egypt", "AF", client_weight=1.0, competing_servers=1),
    Country("NG", "Nigeria", "AF", client_weight=0.8, competing_servers=1),
    Country("PH", "Philippines", "AS", client_weight=1.2, competing_servers=2),
)

#: Countries where the study deploys a capture server (paper Section 3.1).
DEPLOYMENT_COUNTRIES: Tuple[str, ...] = (
    "AU", "BR", "DE", "IN", "JP", "PL", "ZA", "ES", "NL", "GB", "US",
)


class GeoDatabase:
    """Country lookups (the GeoLite2 stand-in)."""

    def __init__(self, countries: Tuple[Country, ...] = COUNTRIES) -> None:
        self._by_code: Dict[str, Country] = {c.code: c for c in countries}

    def country(self, code: str) -> Country:
        return self._by_code[code]

    @property
    def codes(self) -> Tuple[str, ...]:
        return tuple(self._by_code)

    @property
    def countries(self) -> Tuple[Country, ...]:
        return tuple(self._by_code.values())

    def demand_weights(self) -> Dict[str, float]:
        """Per-country NTP client demand (zone traffic shares)."""
        return {code: c.client_weight for code, c in self._by_code.items()}


def default_geo() -> GeoDatabase:
    """The registry used throughout the reproduction."""
    return GeoDatabase()
