"""A TUM-IPv6-Hitlist-like target list over the simulated world.

The real hitlist aggregates DNS-derived names (certificate transparency,
zone files, reverse DNS), traceroute-derived router addresses, and
target-generation-algorithm (TGA) extrapolations — a mix known to
overrepresent servers and infrastructure and to underrepresent end-user
devices (the paper's core motivation).

The builder reproduces that bias structurally:

* every DNS-named device contributes its *current* address (DNS entries
  resolve fresh at build time);
* hyperscaler/CDN front addresses enter en masse (the real list's
  Cloudfront bulge);
* TGA extrapolation adds structured-IID neighbours of every seed, most
  of which are dead — this is what makes the *full* list much larger
  and far less responsive than the *public* (responsive-only) variant;
* NTP-only end-user devices (privacy addresses, rotating prefixes) are
  structurally invisible to all three methods.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set

from repro.analysis.aliases import filter_aliased
from repro.ipv6 import address as addrmod
from repro.world.population import World


@dataclass(frozen=True)
class Hitlist:
    """The two published variants of the target list."""

    full: FrozenSet[int]
    public: FrozenSet[int]
    built_at: float
    #: /64 prefixes the dealiasing pass flagged (published separately,
    #: as the TUM project does).
    aliased_prefixes: FrozenSet[int] = frozenset()

    @property
    def full_size(self) -> int:
        return len(self.full)

    @property
    def public_size(self) -> int:
        return len(self.public)


@dataclass
class HitlistConfig:
    """Composition knobs of the synthetic hitlist."""

    #: Probability a DNS-named device actually appears.
    dns_inclusion_rate: float = 0.96
    #: TGA neighbours generated per seed address.
    tga_per_seed: int = 5
    #: Share of TGA neighbours that use small structured IIDs (the rest
    #: perturb the seed's own IID).
    tga_structured_share: float = 0.7
    #: Traceroute-derived router interface addresses per AS.  These give
    #: the hitlist its very broad AS coverage (the real list contains
    #: most routed ASes) without being application-layer responsive.
    routers_per_as: int = 25
    #: Probability that a dynamic-DNS record is resolved from a lagging
    #: cache, yielding the device's *previous* (dead) address.
    ddns_staleness: float = 0.08
    seed: int = 0x711


def build_hitlist(world: World, config: Optional[HitlistConfig] = None) -> Hitlist:
    """Compile the hitlist from the world's *current* state.

    ``public`` is the subset of entries that are live, reachable hosts
    at build time (the real public list keeps only responsive
    addresses); ``full`` additionally carries the TGA extrapolations
    and stale/parked entries.
    """
    config = config or HitlistConfig()
    rng = random.Random(config.seed)
    full: Set[int] = set()
    seeds: List[int] = []

    # DNS-fed entries resolve through the zone at build time; a slice
    # of dynamic-DNS names comes out of lagging caches and points at
    # the device's previous, now-dead address.
    for record in world.dns:
        if rng.random() >= config.dns_inclusion_rate:
            continue
        if record.previous is not None and \
                rng.random() < config.ddns_staleness:
            address = world.dns.resolve_stale(record.name)
        else:
            address = world.dns.resolve(record.name)
        if address is None:
            continue
        full.add(address)
        seeds.append(address)

    for device in world.devices_of_type("cdn_front"):
        full.add(device.address)
        seeds.append(device.address)

    # Traceroute-like probing surfaces router interfaces in essentially
    # every routed AS — low, structured IIDs near the top of each
    # allocation (which is also where premises /48s live, producing the
    # /48 overlap with NTP-sourced data the paper reports).
    for system in world.asdb.systems:
        blocks = world.asdb.blocks_of(system.number)
        for index in range(config.routers_per_as):
            block = blocks[index % len(blocks)]
            net48 = rng.randrange(0, 256) << 80
            net64 = rng.randrange(0, 16) << 64
            full.add(block + net48 + net64 + rng.randrange(1, 0x100))

    # TGA extrapolation: bias towards low/structured IIDs near seeds.
    for seed_address in seeds:
        prefix64 = addrmod.prefix(seed_address, 64)
        for _ in range(config.tga_per_seed):
            if rng.random() < config.tga_structured_share:
                iid = rng.randrange(1, 0x2000)
            else:
                iid = addrmod.iid(seed_address) ^ rng.randrange(1, 0x100)
            full.add(addrmod.with_iid(prefix64, iid))

    responsive = {
        value for value in full
        if (host := world.network.host(value)) is not None and host.reachable
    }
    # Dealiasing (Gasser et al.): aliased /64s would otherwise flood the
    # responsive list with pseudo-hosts.  Probed with real connections
    # from the list-builder's own vantage point.
    prober = addrmod.parse("2001:500:aa::1")
    world.network.add_host(prober)
    alias_report = filter_aliased(world.network, prober, responsive,
                                  rng=random.Random(config.seed ^ 0xA11A))
    return Hitlist(
        full=frozenset(full),
        public=alias_report.kept,
        built_at=world.clock.now(),
        aliased_prefixes=alias_report.aliased_prefixes,
    )
