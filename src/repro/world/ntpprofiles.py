"""Seeded NTP software profiles for world pool servers.

The paper's security-configuration story (Figs 2/3) hinges on version
and patch-level spread: a pool is a mix of current daemons and years-
stale ones, and whether a server answers mode-7 monlist is a pure
function of that software level — ``ntpd`` before 4.2.7p26 (and every
NTPv3-era daemon) ships with the monitor list queryable, later builds
drop mode 7 unless explicitly re-enabled.

:func:`profile_for` derives one deterministic
:class:`NtpServerProfile` per ``(seed, address)`` pair on a private RNG
stream, so assigning profiles never perturbs any other seeded draw a
campaign makes (dead-server coin flips, churn, netspeeds) — the same
stream-isolation discipline the service daemon uses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Stream label mixed into the per-address RNG so profile draws can
#: never collide with another consumer hashing the same (seed, address).
_STREAM_SALT = 0x4E54_5050  # "NTPP"

#: SplitMix64-style odd multiplier for address mixing.
_MIX = 0x9E3779B97F4A7C15

#: Share of servers still on an NTPv3-era daemon (monlist always on).
V3_SHARE = 0.12

#: Share on an unpatched v4 (< 4.2.7p26: monlist still answered).
V4_UNPATCHED_SHARE = 0.28


@dataclass(frozen=True)
class NtpServerProfile:
    """One server's software level and control-plane exposure."""

    #: Advertised version string (what mode-6 readvar reports).
    software_version: str
    #: NTP major version the daemon implements (3 or 4).
    ntp_version: int
    #: Whether mode-7 monlist is answered (pre-4.2.7p26 behaviour).
    monlist_enabled: bool


def profile_for(seed: int, address: int) -> NtpServerProfile:
    """The deterministic profile of the server at ``address``.

    A pure function of ``(seed, address)``: the same server gets the
    same software level in every run, and profile assignment consumes
    no shared RNG stream.
    """
    # Fold the address's upper half in before masking: servers that
    # differ only in their subnet bits (bits 64+) must not share a
    # stream.
    mixed = (address ^ (address >> 64)) & (1 << 64) - 1
    rng = random.Random(((seed ^ _STREAM_SALT) * _MIX + mixed * _MIX)
                        & (1 << 64) - 1)
    draw = rng.random()
    if draw < V3_SHARE:
        return NtpServerProfile(
            software_version=f"xntpd 3.{rng.randint(4, 5)}.{rng.randint(0, 9)}",
            ntp_version=3,
            monlist_enabled=True,
        )
    if draw < V3_SHARE + V4_UNPATCHED_SHARE:
        return NtpServerProfile(
            software_version=f"ntpd 4.2.6p{rng.randint(1, 5)}",
            ntp_version=4,
            monlist_enabled=True,
        )
    return NtpServerProfile(
        software_version=f"ntpd 4.2.8p{rng.randint(3, 17)}",
        ntp_version=4,
        monlist_enabled=False,
    )
