"""The synthetic Internet population.

:func:`build_world` assembles everything the experiments run against:

* **eyeball networks** — per-country ISP ASes holding customer
  premises.  Each premises gets a delegated /56 (often rotating daily),
  a router (FRITZ!Box / D-LINK / Cisco WAP / locked-down generic CPE),
  a handful of pure NTP client devices (phones, TVs, speakers — the
  bulk of collected addresses, never scannable), and occasional
  hobbyist/IoT extras (Raspberry Pis with SSH, CoAP media devices,
  unmanaged MQTT brokers, consumer portals);
* **datacenter networks** — hosting ASes with web servers (default
  pages, parking pages, 3CX systems, Plesk panels), professionally
  managed SSH hosts and brokers; research ASes with FreeBSD
  infrastructure; hyperscaler ASes fronting a CDN (SNI-required TLS);
* the **identity fabric** — vendor MACs from the OUI registry, SSH host
  keys drawn from reuse pools, per-device certificates.

Every draw comes from one seeded :class:`random.Random`, so a world is
a pure function of its :class:`WorldConfig`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ipv6.oui import LOCAL_OUI, UNLISTED_OUI, OuiRegistry, default_registry
from repro.net.clock import VirtualClock
from repro.net.dns import DnsZone
from repro.net.rdns import ReverseDns
from repro.net.simnet import Network
from repro.data import ssh_releases
from repro.tlslib.keys import KeyIdentity, KeyPool
from repro.world import devices as dev
from repro.world.asdb import AsDatabase, AutonomousSystem, build_asdb
from repro.world.churn import ChurnModel, Premises
from repro.world.geo import GeoDatabase, default_geo


@dataclass
class WorldConfig:
    """Size and composition knobs for a generated world.

    ``scale`` multiplies every population count; tests run ``scale≈0.1``
    (hundreds of devices), benchmarks the default (tens of thousands).
    """

    seed: int = 20240720
    scale: float = 1.0
    #: Customer premises per unit of country client weight.
    premises_base: float = 24.0
    #: CDN front addresses (hitlist-only HTTP responders).
    cdn_fronts: int = 2600
    #: Aliased /64s: CDN edge subnets answering on *every* address
    #: (Gasser et al.'s "clusters in the expanse").
    aliased_64s: int = 30
    #: Generic web servers per hosting AS.
    web_per_hosting_as: int = 60
    #: SSH servers per hosting AS.
    ssh_per_hosting_as: int = 55
    #: Managed MQTT/AMQP brokers per hosting AS.
    mqtt_per_hosting_as: int = 8
    amqp_per_hosting_as: int = 4
    #: FreeBSD infrastructure hosts per research AS.
    freebsd_per_research_as: int = 8
    #: Probability that an eyeball premises keeps a static prefix.
    static_prefix_rate: float = 0.45
    #: Daily rotation probability for dynamic premises.
    rotation_rate: float = 0.35
    #: Probability that a consumer device has a (dynamic-)DNS name and is
    #: therefore discoverable by hitlist-style sourcing.
    consumer_dns_rate: float = 0.02
    #: Probability that a *professionally managed* Debian-derived SSH
    #: host runs the latest patch level.
    managed_latest_rate: float = 0.55
    #: Same for end-user administered hosts (Pis, home servers).
    unmanaged_latest_rate: float = 0.15
    #: Access-control rates for brokers (Figure 3's ground truth).
    managed_mqtt_auth_rate: float = 0.82
    unmanaged_mqtt_auth_rate: float = 0.34
    amqp_auth_rate: float = 0.93
    #: SSH host-key reuse (container/system images shipping secrets).
    ssh_reuse_rate: float = 0.35
    ssh_pool_size: int = 12
    unmanaged_ssh_reuse_rate: float = 0.55
    unmanaged_ssh_pool_size: int = 4


#: Router-type weights per region bucket.
_ROUTER_MIX: Dict[str, Tuple[Tuple[str, float], ...]] = {
    "DE": (("fritzbox", 0.74), ("dlink", 0.04), ("cisco_wap", 0.01),
           ("generic", 0.21)),
    "EU": (("fritzbox", 0.42), ("dlink", 0.06), ("cisco_wap", 0.01),
           ("generic", 0.51)),
    "OTHER": (("fritzbox", 0.015), ("dlink", 0.05), ("cisco_wap", 0.006),
              ("generic", 0.929)),
}

#: Client-device vendor mix (vendor name, weight, region bias).
_CLIENT_VENDORS_EU = (
    ("Amazon Technologies Inc.", 0.22),
    ("Samsung Electronics Co.,Ltd", 0.16),
    ("Sonos, Inc.", 0.12),
    ("AVM GmbH", 0.10),          # AVM smart-home / DECT gear
    ("Intel Corporate", 0.08),
    ("(unlisted)", 0.03),
    ("(local)", 0.29),
)
_CLIENT_VENDORS_ASIA = (
    ("vivo Mobile Communication Co., Ltd.", 0.16),
    ("GUANGDONG OPPO MOBILE TELECOMMUNICATIONS CORP.,LTD", 0.12),
    ("Beijing Xiaomi Electronics Co.,Ltd", 0.10),
    ("Shenzhen Ogemray Technology Co.,Ltd", 0.09),
    ("China Dragon Technology Limited", 0.08),
    ("Qingdao Haier Multimedia Limited.", 0.07),
    ("QING DAO HAIER TELECOM CO.,LTD.", 0.06),
    ("Shenzhen iComm Semiconductor CO.,LTD", 0.05),
    ("Hui Zhou Gaoshengda Technology Co.,LTD", 0.04),
    ("Samsung Electronics Co.,Ltd", 0.08),
    ("(unlisted)", 0.03),
    ("(local)", 0.12),
)
_CLIENT_VENDORS_OTHER = (
    ("Amazon Technologies Inc.", 0.18),
    ("Samsung Electronics Co.,Ltd", 0.15),
    ("Sonos, Inc.", 0.06),
    ("Fiberhome Telecommunication Technologies Co.,LTD", 0.06),
    ("Tenda Technology Co.,Ltd.Dongguan branch", 0.06),
    ("Earda Technologies co Ltd", 0.05),
    ("Guangzhou Shiyuan Electronics Co., Ltd.", 0.05),
    ("Shenzhen Cultraview Digital Technology Co., Ltd", 0.05),
    ("(unlisted)", 0.04),
    ("(local)", 0.30),
)

#: Titles for generic *hitlist-side* servers (long tail of Table 8).
_SERVER_TITLES: Tuple[Tuple[Optional[str], float, bool], ...] = (
    # (title, weight, https_with_public_cert)
    (None, 0.26, True),                       # empty-title default vhosts
    ("Welcome to nginx!", 0.12, True),
    ("Apache2 Ubuntu Default Page: It works", 0.12, True),
    ("Nothing Page", 0.07, True),
    ("(IP) was not found", 0.055, True),      # hosting parking page
    ("Host Europe GmbH - (IP)", 0.05, True),
    ("3CX Webclient", 0.028, True),
    ("3CX Phone System Management Console", 0.024, True),
    ("Plesk Obsidian 18.0.34", 0.022, True),
    ("Index of /pub/", 0.018, True),
    ("Domain Default page", 0.015, True),
    ("Login - Join", 0.014, True),
    ("Hier entsteht eine neue Webseite.", 0.012, True),
    ("FASTPANEL2", 0.010, True),
    ("Selamat, website (IP) telah aktif!", 0.010, False),
    ("Freebox OS :: Identification", 0.009, True),
    ("Hello! Welcome to Synology Web Station!", 0.008, True),
    ("NAS1 - Synology DiskStation", 0.007, True),
    ("this is a mail-in-a-box", 0.006, True),
    ("Sign in · GitLab", 0.006, True),
    ("Outlook", 0.005, True),
    ("Grafana", 0.005, True),
    ("phpMyAdmin", 0.004, True),
    ("Site is under construction", 0.008, False),
    ("Unknown Domain", 0.04, False),
    ("GPON Home Gateway", 0.03, False),
    ("Common UI", 0.002, True),
    ("Webinterface", 0.0005, True),
)

#: Titles for *NTP-side* consumer portals (modems/hotspot UIs, Table 8).
_CONSUMER_PORTAL_TITLES: Tuple[Tuple[str, float], ...] = (
    ("UFI配置管理-ZHXL_V2.0.0", 0.18),
    ("My Modem", 0.15),
    ("Ms Portal", 0.13),
    ("UFI-JZ_V3.0.0", 0.09),
    ("GAID - WIFI NG BAYAN", 0.09),
    ("Common UI", 0.14),
    ("Webinterface", 0.12),
    ("Home", 0.06),
    ("pfsense-nat - Login", 0.02),
    ("OctoPrint Login", 0.01),
    ("Remote Console on LAN", 0.01),
)

#: CoAP resource sets per group (Table 3, bottom right).
COAP_RESOURCE_SETS: Dict[str, Tuple[str, ...]] = {
    "castdevice": ("/castDeviceSearch", "/castSetup"),
    "qlink": ("/qlink/reg", "/qlink/status", "/qlink/pay"),
    "efento": ("/m", "/c", "/t", "/.well-known/core"),
    "nanoleaf": ("/panel/effects", "/panel/state", "/.well-known/core"),
    "empty": (),
    "other": ("/maha", "/.well-known/core"),
}


def _weighted(rng: random.Random, table) -> object:
    choices = [entry[0] for entry in table]
    weights = [entry[1] for entry in table]
    return rng.choices(choices, weights=weights, k=1)[0]


@dataclass
class World:
    """A fully materialized population plus its registries."""

    config: WorldConfig
    rng: random.Random
    clock: VirtualClock
    network: Network
    geo: GeoDatabase
    asdb: AsDatabase
    oui: OuiRegistry
    rdns: ReverseDns = field(default_factory=ReverseDns)
    dns: DnsZone = field(default_factory=DnsZone)
    #: Ground truth: /64 prefixes that answer on every address.
    aliased_prefixes: List[int] = field(default_factory=list)
    devices: List[dev.Device] = field(default_factory=list)
    premises: List[Premises] = field(default_factory=list)
    churn: Optional[ChurnModel] = None
    #: Per-AS next-free /56 index (address plan cursor).
    _alloc_cursor: Dict[int, int] = field(default_factory=dict)
    #: Per-AS cursor of the dense (datacenter) allocation plan.
    _dense_cursor: Dict[int, int] = field(default_factory=dict)
    _mac_cursor: int = field(default=0)

    # -- address plan ----------------------------------------------------

    def allocate_prefix56(self, asn: int) -> int:
        """Next free /56 in an AS (used for premises + churn).

        Delegations are strided across the AS's space (odd-multiplier
        hashing over a 16 Ki-/56 window, i.e. 64 /48s) instead of packed
        densely: real ISPs spread customers over many /48s, which is
        what gives NTP-sourced data its broad-but-dense /48 footprint.
        """
        index = self._alloc_cursor.get(asn, 0)
        self._alloc_cursor[asn] = index + 1
        window = 1 << 14
        spread = (index * 2654435761) % window if index < window else index
        return self.asdb.prefix_for(asn, spread, length=56)

    def allocate_prefix64(self, asn: int) -> int:
        """A standalone /64 (datacenter subnets)."""
        return self.allocate_prefix56(asn)  # /64 slot 0 of a fresh /56

    def allocate_dense_prefix64(self, asn: int, per_56: int = 4) -> int:
        """A /64 packed densely with its AS neighbours.

        Datacenter networks put many servers into shared /56s (and CDNs
        many fronts), which is what makes hitlist scan results compress
        strongly under network aggregation (Appendix C, Table 5).  Dense
        allocations live above the strided premises window, so the two
        plans never collide.
        """
        index = self._dense_cursor.get(asn, 0)
        self._dense_cursor[asn] = index + 1
        window = 1 << 14
        prefix56 = self.asdb.prefix_for(asn, window + index // per_56,
                                        length=56)
        return prefix56 + ((index % per_56) << 64)

    # -- identity fabric ---------------------------------------------------

    def fresh_mac(self, vendor_name: str) -> int:
        """A unique MAC from a vendor's OUI space."""
        self._mac_cursor += 1
        serial = self._mac_cursor & 0xFFFFFF
        if vendor_name == "(unlisted)":
            oui = UNLISTED_OUI
        elif vendor_name == "(local)":
            oui = LOCAL_OUI
        else:
            vendor = self.oui.vendor_named(vendor_name)
            oui = vendor.ouis[self._mac_cursor % len(vendor.ouis)]
        return (oui << 24) | serial

    # -- views --------------------------------------------------------------

    def ntp_clients(self) -> List[dev.Device]:
        """Devices that query the pool (the collectable population)."""
        return [device for device in self.devices if device.is_ntp_client]

    def scannable(self) -> List[dev.Device]:
        """Devices that are reachable and expose at least one service."""
        return [device for device in self.devices
                if device.reachable and device.has_services]

    def dns_named(self) -> List[dev.Device]:
        """Devices with DNS presence (hitlist-discoverable)."""
        return [device for device in self.devices
                if device.labels.get("dns") == "yes"]

    def devices_of_type(self, type_name: str) -> List[dev.Device]:
        return [d for d in self.devices if d.type_name == type_name]


def _place(world: World, device: dev.Device, asn: int, country: str,
           prefix64: int) -> dev.Device:
    device.asn = asn
    device.country = country
    device.assign_address(prefix64, world.rng)
    device.materialize(world.network)
    world.devices.append(device)
    if device.labels.get("dns") == "yes":
        register_dns_name(world, device)
    return device


def register_dns_name(world: World, device: dev.Device) -> None:
    """Publish a (dynamic-)DNS AAAA record for a device.

    The name is stable per device; premises devices will DDNS-update it
    on every prefix rotation (see :class:`repro.world.churn.ChurnModel`).
    """
    if "dns_name" in device.labels:
        return
    name = f"{device.type_name}-{len(world.dns)}.dyn.sim"
    device.labels["dns_name"] = name
    world.dns.register(name, device.address)


def _client_vendor_table(continent: str):
    if continent == "EU":
        return _CLIENT_VENDORS_EU
    if continent == "AS":
        return _CLIENT_VENDORS_ASIA
    return _CLIENT_VENDORS_OTHER


def spawn_client_device(world: World, site: Premises,
                        rng: random.Random) -> Optional[dev.Device]:
    """A new consumer device joins an existing premises mid-campaign.

    Population drift for long-running (service) campaigns: households
    buy phones, TVs, and consoles between collection weeks, so the NTP
    client population grows over a multi-week window.  Mirrors the
    build-time client sampling in ``_populate_premises`` (same vendor
    mix per continent, same 24 % EUI-64 share) so drifted devices are
    statistically indistinguishable from founding ones.  ``rng`` is the
    caller's dedicated drift stream — the world's own RNG is never
    touched, so existing build/churn sequences stay byte-stable.

    Returns ``None`` when the premises' /56 is full (256 /64 slots).
    """
    slot = len(site.devices)
    if slot >= 256:
        return None
    continent = world.geo.country(site.country).continent
    vendor = _weighted(rng, _client_vendor_table(continent))
    use_eui64 = rng.random() < 0.24
    mac = world.fresh_mac(vendor) if use_eui64 else None
    device = dev.make_client_device(
        rng, site.site_id, mac, vendor,
        addressing="eui64" if use_eui64 else "privacy")
    site.devices.append(device)
    return _place(world, device, site.asn, site.country,
                  site.device_prefix64(slot))


def retire_client_device(world: World, site: Premises,
                         device: dev.Device) -> None:
    """Take a consumer device offline for good (population drift).

    The device object stays in ``world.devices`` (it existed; collected
    history referencing its addresses remains valid) but leaves the
    premises roster, stops emitting NTP, and disappears from the
    network — so future churn rotations and collection days no longer
    see it.
    """
    device.ntp_interval = None
    device.reachable = False
    world.network.remove_host(device.address)
    try:
        site.devices.remove(device)
    except ValueError:
        pass


def _make_router(world: World, rng: random.Random, index: int,
                 country: str, continent: str) -> dev.Device:
    bucket = "DE" if country == "DE" else ("EU" if continent == "EU" else "OTHER")
    kind = _weighted(rng, _ROUTER_MIX[bucket])
    if kind == "fritzbox":
        # A slice of the AVM fleet are repeaters/powerline adapters that
        # also sit directly on the customer prefix.
        roll = rng.random()
        mac = world.fresh_mac(
            "AVM Audiovisuelles Marketing und Computersysteme GmbH"
        )
        if roll < 0.05:
            return dev.make_fritz_powerline(rng, index, mac)
        if roll < 0.11:
            return dev.make_fritz_repeater(rng, index, mac)
        return dev.make_fritzbox(rng, index, mac)
    if kind == "dlink":
        return dev.make_dlink_router(rng, index,
                                     world.fresh_mac("D-Link International"))
    if kind == "cisco_wap":
        return dev.make_cisco_wap(rng, index,
                                  world.fresh_mac("Cisco Systems, Inc"))
    return dev.make_generic_cpe(
        rng, index,
        world.fresh_mac("(unlisted)") if rng.random() < 0.03 else None,
    )


def _sample_ssh(rng: random.Random, config: WorldConfig, *, distro: str,
                managed: bool, key: KeyIdentity, ntp: bool,
                reachable: bool = True, segment: str = "server",
                addressing: Optional[str] = None,
                mac: Optional[int] = None) -> dev.Device:
    releases = ssh_releases.releases_for(distro)
    # Newer releases dominate; stable tails linger.
    weights = [3.0, 1.6, 0.7][: len(releases)]
    release = rng.choices(releases, weights=weights, k=1)[0]
    latest_rate = (config.managed_latest_rate if managed
                   else config.unmanaged_latest_rate)
    if rng.random() < latest_rate:
        patch = release.latest
    else:
        patch = rng.choice(release.patches[:-1]) if len(release.patches) > 1 \
            else release.latest
    outdated = patch != release.latest
    return dev.make_ssh_host(
        rng, 0, os_name=distro,
        software=release.banner_software(),
        comment=release.banner_comment(patch),
        host_key=key, ntp=ntp, reachable=reachable, segment=segment,
        addressing=addressing, mac=mac, outdated=outdated,
    )


def _populate_premises(world: World, site: Premises, continent: str,
                       ssh_pool_unmanaged: KeyPool) -> None:
    rng = world.rng
    config = world.config
    country = site.country
    slot = 0

    def place(device: dev.Device) -> dev.Device:
        nonlocal slot
        prefix64 = site.device_prefix64(slot)
        slot += 1
        site.devices.append(device)
        return _place(world, device, site.asn, country, prefix64)

    router = _make_router(world, rng, site.site_id, country, continent)
    if rng.random() < config.consumer_dns_rate and router.has_services:
        router.labels["dns"] = "yes"
    place(router)

    # FRITZ!Boxes expose their web UI (and emit NTP) from a second
    # interface in another /64 of the same delegated /56 — the reason
    # the paper sees ~2 FRITZ IPs per /56 but ~1 per /64 (Table 6).
    if router.type_name == "fritzbox":
        mirror_labels = {key: value for key, value in router.labels.items()
                         if key not in ("dns", "dns_name")}
        mirror_labels["mirror"] = "yes"
        mirror = dev.Device(
            type_name="fritzbox",
            addressing="eui64",
            mac=router.mac,
            ntp_interval=router.ntp_interval,
            reachable=router.reachable,
            web=router.web,  # the same device: same title, same cert
            labels=mirror_labels,
        )
        place(mirror)

    vendor_table = _client_vendor_table(continent)
    for _ in range(rng.randint(1, 5)):
        vendor = _weighted(rng, vendor_table)
        use_eui64 = rng.random() < 0.24
        mac = world.fresh_mac(vendor) if use_eui64 else None
        place(dev.make_client_device(
            rng, site.site_id, mac, vendor,
            addressing="eui64" if use_eui64 else "privacy",
        ))

    # Hobbyist Raspberry Pi with exposed SSH.
    if rng.random() < 0.02:
        key = ssh_pool_unmanaged.draw(rng)
        pi = _sample_ssh(
            rng, config, distro="Raspbian", managed=False, key=key,
            ntp=True, segment="consumer", addressing="eui64",
            mac=world.fresh_mac("Raspberry Pi Foundation"),
        )
        place(pi)
        if rng.random() < 0.004:
            pi.labels["dns"] = "yes"
            register_dns_name(world, pi)

    # Home Debian/Ubuntu box (NAS, home server) exposed via SSH.
    if rng.random() < 0.012:
        key = ssh_pool_unmanaged.draw(rng)
        place(_sample_ssh(
            rng, config, distro=rng.choice(["Debian", "Ubuntu"]),
            managed=False, key=key, ntp=True, segment="consumer",
            addressing="structured",
        ))

    # Consumer web portals (UFI modems, hotspot UIs) — Asia-heavy.
    portal_rate = 0.035 if continent == "AS" else 0.004
    if rng.random() < portal_rate:
        title = _weighted(rng, _CONSUMER_PORTAL_TITLES)
        # White-label firmware ships one baked-in certificate per
        # title/model: same hostname seed => same cert and key.
        slug = "".join(ch for ch in title if ch.isalnum()).lower() or "portal"
        portal = dev.make_web_server(
            rng, 0, title=title, https=rng.random() < 0.5,
            public_cert=False, hostname=f"{slug}.portal.sim",
            ntp=True, type_name="consumer_portal", segment="consumer",
        )
        portal.labels.pop("dns", None)
        portal.ntp_interval = 3600.0
        place(portal)

    # CoAP media devices ("castdevice") — never DNS-named.
    if rng.random() < 0.018:
        place(dev.make_coap_device(
            rng, site.site_id,
            resources=COAP_RESOURCE_SETS["castdevice"], group="castdevice",
            ntp=True, mac=world.fresh_mac("(unlisted)"),
        ))

    # qlink crypto-Wi-Fi hotspots: NTP *and* partially DNS-listed.
    if rng.random() < 0.016:
        hotspot = dev.make_coap_device(
            rng, site.site_id,
            resources=COAP_RESOURCE_SETS["qlink"], group="qlink", ntp=True,
        )
        place(hotspot)
        if rng.random() < 0.5:
            hotspot.labels["dns"] = "yes"
            register_dns_name(world, hotspot)

    # Sensor-style IoT (efento/nanoleaf): vendor-cloud time sync (no
    # pool NTP) but DNS-registered — the hitlist's IoT slice.
    if rng.random() < 0.004:
        group = rng.choice(["efento", "nanoleaf"])
        sensor = dev.make_coap_device(
            rng, site.site_id, resources=COAP_RESOURCE_SETS[group],
            group=group, ntp=False,
            mac=world.fresh_mac("Nanoleaf") if group == "nanoleaf"
            else world.fresh_mac("Espressif Inc."),
        )
        sensor.labels["dns"] = "yes"
        place(sensor)

    # CoAP endpoints with an empty or odd resource directory.
    if rng.random() < 0.003:
        group = rng.choice(["empty", "other"])
        place(dev.make_coap_device(
            rng, site.site_id, resources=COAP_RESOURCE_SETS[group],
            group=group, ntp=True,
        ))

    # Unmanaged home MQTT broker (smart-home hub).
    if rng.random() < 0.010:
        broker = dev.make_mqtt_broker(
            rng, site.site_id,
            require_auth=rng.random() < config.unmanaged_mqtt_auth_rate,
            tls=rng.random() < 0.07, ntp=True, segment="consumer",
        )
        place(broker)


def _populate_hosting_as(world: World, system: AutonomousSystem,
                         ssh_pool: KeyPool) -> None:
    rng = world.rng
    config = world.config
    scale = config.scale

    def place_standalone(device: dev.Device) -> dev.Device:
        prefix64 = world.allocate_dense_prefix64(system.number)
        return _place(world, device, system.number, system.country, prefix64)

    web_count = max(1, round(config.web_per_hosting_as * scale))
    for index in range(web_count):
        title, _, https = _SERVER_TITLES[
            rng.choices(range(len(_SERVER_TITLES)),
                        weights=[w for _, w, _ in _SERVER_TITLES], k=1)[0]
        ]
        server = dev.make_web_server(
            rng, index, title=title, https=https, public_cert=True,
            hostname=f"www-{system.number}-{index}.sim",
            ntp=rng.random() < 0.25,
        )
        place_standalone(server)

    ssh_count = max(1, round(config.ssh_per_hosting_as * scale))
    for index in range(ssh_count):
        distro = rng.choices(["Ubuntu", "Debian"], weights=[0.68, 0.32], k=1)[0]
        key = ssh_pool.draw(rng)
        host = _sample_ssh(
            rng, config, distro=distro, managed=True, key=key,
            ntp=rng.random() < 0.25,
        )
        host.labels["dns"] = "yes"
        place_standalone(host)

    for index in range(max(1, round(config.mqtt_per_hosting_as * scale))):
        broker = dev.make_mqtt_broker(
            rng, index,
            require_auth=rng.random() < config.managed_mqtt_auth_rate,
            tls=rng.random() < 0.35, ntp=rng.random() < 0.12,
            segment="server",
        )
        broker.labels["dns"] = "yes"
        place_standalone(broker)

    for index in range(max(1, round(config.amqp_per_hosting_as * scale))):
        broker = dev.make_amqp_broker(
            rng, index,
            require_auth=rng.random() < config.amqp_auth_rate,
            tls=rng.random() < 0.3, ntp=rng.random() < 0.3,
            segment="server",
        )
        broker.labels["dns"] = "yes"
        place_standalone(broker)

    # Cloud-side CoAP endpoints (device-management REST-ish surfaces).
    if rng.random() < 0.5:
        group = rng.choices(["qlink", "efento", "other", "empty"],
                            weights=[0.3, 0.2, 0.1, 0.4], k=1)[0]
        endpoint = dev.make_coap_device(
            rng, 0, resources=COAP_RESOURCE_SETS[group], group=group,
            ntp=False,
        )
        endpoint.labels["dns"] = "yes"
        place_standalone(endpoint)


def _populate_research_as(world: World, system: AutonomousSystem,
                          ssh_pool: KeyPool) -> None:
    rng = world.rng
    config = world.config
    count = max(1, round(config.freebsd_per_research_as * config.scale))
    for index in range(count):
        key = ssh_pool.draw(rng)
        host = dev.make_ssh_host(
            rng, index, os_name="FreeBSD",
            software="OpenSSH_9.6",
            comment=f"FreeBSD-2024{rng.choice(['0318', '0618'])}",
            host_key=key, ntp=rng.random() < 0.2,
        )
        host.labels["dns"] = "yes"
        prefix64 = world.allocate_dense_prefix64(system.number)
        _place(world, host, system.number, system.country, prefix64)


def _populate_cdn(world: World, cloud_systems: List[AutonomousSystem]) -> None:
    rng = world.rng
    count = max(2, round(world.config.cdn_fronts * world.config.scale))
    for index in range(count):
        system = cloud_systems[index % len(cloud_systems)]
        front = dev.make_web_server(
            rng, index, title=None, https=True, public_cert=True,
            hostname=f"front-{index}.cdn.sim", ntp=False,
            type_name="cdn_front", sni_required=True, segment="cdn",
        )
        prefix64 = world.allocate_dense_prefix64(system.number, per_56=64)
        _place(world, front, system.number, system.country, prefix64)

    # Aliased edge subnets: a load balancer answers for every address
    # of the /64 with the same SNI-gated CDN personality.  They live in
    # the same dense CDN /56s, which is how hitlist TGAs stumble into
    # them.
    aliased = max(1, round(world.config.aliased_64s * world.config.scale))
    for index in range(aliased):
        system = cloud_systems[index % len(cloud_systems)]
        edge = dev.make_web_server(
            rng, 100_000 + index, title=None, https=True, public_cert=True,
            hostname=f"edge-{index}.cdn.sim", ntp=False,
            type_name="cdn_front", sni_required=True, segment="cdn",
        )
        prefix64 = world.allocate_dense_prefix64(system.number, per_56=64)
        _place(world, edge, system.number, system.country, prefix64)
        wildcard = world.network.add_wildcard_host(prefix64)
        edge.bind_services(wildcard)
        world.aliased_prefixes.append(prefix64)


def build_world(config: Optional[WorldConfig] = None) -> World:
    """Generate a complete world from a config (deterministically)."""
    config = config or WorldConfig()
    rng = random.Random(config.seed)
    clock = VirtualClock()
    network = Network(clock=clock, rng=random.Random(config.seed ^ 0xF00D))
    geo = default_geo()
    asdb = build_asdb(geo.codes, rng=random.Random(config.seed ^ 0xA5))
    world = World(
        config=config, rng=rng, clock=clock, network=network,
        geo=geo, asdb=asdb, oui=default_registry(),
    )

    ssh_pool_managed = KeyPool(
        "managed", size=config.ssh_pool_size,
        reuse_rate=config.ssh_reuse_rate,
    )
    ssh_pool_unmanaged = KeyPool(
        "unmanaged", size=config.unmanaged_ssh_pool_size,
        reuse_rate=config.unmanaged_ssh_reuse_rate,
    )

    eyeballs: Dict[str, List[AutonomousSystem]] = {}
    hosting: List[AutonomousSystem] = []
    research: List[AutonomousSystem] = []
    clouds: List[AutonomousSystem] = []
    for system in asdb.systems:
        if system.category == "Cable/DSL/ISP":
            eyeballs.setdefault(system.country, []).append(system)
        elif system.name.startswith("HyperCloud"):
            clouds.append(system)
        elif system.category == "Content":
            hosting.append(system)
        elif system.category == "Educational/Research":
            research.append(system)

    def fresh_prefix56(site: Premises) -> int:
        return world.allocate_prefix56(site.asn)

    churn = ChurnModel(network, rng, fresh_prefix56, dns=world.dns,
                       clock=clock)
    world.churn = churn

    site_id = 0
    for country in geo.countries:
        systems = eyeballs.get(country.code)
        if not systems:
            continue
        count = max(1, round(country.client_weight
                             * config.premises_base * config.scale))
        for _ in range(count):
            system = rng.choice(systems)
            site = Premises(
                site_id=site_id,
                asn=system.number,
                country=country.code,
                prefix56=world.allocate_prefix56(system.number),
                rotation_rate=(0.0 if rng.random() < config.static_prefix_rate
                               else config.rotation_rate),
            )
            site_id += 1
            _populate_premises(world, site, country.continent,
                               ssh_pool_unmanaged)
            churn.register(site)
            world.premises.append(site)

    for system in hosting:
        _populate_hosting_as(world, system, ssh_pool_managed)
    for system in research:
        _populate_research_as(world, system, ssh_pool_managed)
    _populate_cdn(world, clouds)

    return world
