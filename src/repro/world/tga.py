"""An entropy-based target generation algorithm (TGA).

Hitlists extend their seed sets with generated candidates — Entropy/IP,
6Gen, 6GAN and friends model the statistical structure of known
addresses and emit look-alikes.  The paper leans on this twice: the TUM
hitlist's TGA-extrapolated entries (Section 2.1.1) and the closing
recommendation to evaluate *generators trained on NTP-sourced (end-user)
addresses* as a future address source.

This implementation follows Entropy/IP's core idea in a compact form:

1. **learn** — compute each of the 32 address nybbles' empirical value
   distribution and Shannon entropy over the seed set;
2. **segment** — classify nybbles as *fixed* (entropy ≈ 0), *dirty*
   (low entropy: a few dominant values), or *free* (high entropy);
3. **generate** — for each candidate, copy a random seed and resample
   the dirty nybbles from their learned distributions (free nybbles are
   left alone with probability ``keep_free`` or resampled uniformly
   over observed values), biasing candidates into the seeds' structural
   neighbourhood.

Like every seed-based TGA, it inherits its input's bias — the property
the paper's Figure 1/Table 3 arguments rest on, and which the ablation
bench measures directly.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: Nybbles per IPv6 address.
NYBBLES = 32

#: Entropy (bits) below which a nybble counts as fixed.
FIXED_THRESHOLD = 0.05

#: Entropy below which a nybble is "dirty" (structured but variable).
DIRTY_THRESHOLD = 2.5


def _nybble(value: int, index: int) -> int:
    """Nybble ``index`` of an address, 0 = most significant."""
    shift = 4 * (NYBBLES - 1 - index)
    return (value >> shift) & 0xF


def _with_nybble(value: int, index: int, nybble: int) -> int:
    shift = 4 * (NYBBLES - 1 - index)
    mask = 0xF << shift
    return (value & ~mask) | ((nybble & 0xF) << shift)


@dataclass(frozen=True)
class NybbleModel:
    """Learned statistics of one nybble position."""

    index: int
    distribution: Tuple[Tuple[int, float], ...]  # (value, probability)
    entropy: float

    @property
    def segment(self) -> str:
        if self.entropy <= FIXED_THRESHOLD:
            return "fixed"
        if self.entropy <= DIRTY_THRESHOLD:
            return "dirty"
        return "free"

    def sample(self, rng: random.Random) -> int:
        values = [value for value, _ in self.distribution]
        weights = [weight for _, weight in self.distribution]
        return rng.choices(values, weights=weights, k=1)[0]


@dataclass
class EntropyTga:
    """A trained generator.

    Build with :func:`train`; call :meth:`generate` for candidates.
    """

    seeds: Tuple[int, ...]
    models: Tuple[NybbleModel, ...]
    seed: int = 0x76A

    @property
    def segments(self) -> Dict[str, int]:
        """How many nybbles fall into each segment (model shape)."""
        counts: Dict[str, int] = {"fixed": 0, "dirty": 0, "free": 0}
        for model in self.models:
            counts[model.segment] += 1
        return counts

    @property
    def total_entropy(self) -> float:
        """Sum of per-nybble entropies (address-space spread proxy)."""
        return sum(model.entropy for model in self.models)

    def generate(self, count: int, *, keep_free: float = 0.5,
                 exclude_seeds: bool = True,
                 prefix_lock: int = 56,
                 rng: Optional[random.Random] = None) -> List[int]:
        """Emit up to ``count`` distinct candidates.

        Candidates start from a random seed and keep its first
        ``prefix_lock`` bits verbatim (an independent per-nybble model
        would otherwise tear apart the prefix correlations and generate
        into unrouted space — real TGAs expand *within* dense observed
        regions).  Beyond the lock, dirty nybbles are resampled from
        their learned distributions, free nybbles with probability
        ``1 - keep_free``; fixed nybbles never change.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if not 0 <= prefix_lock <= 128 or prefix_lock % 4:
            raise ValueError("prefix_lock must be a multiple of 4 in "
                             f"[0, 128], got {prefix_lock}")
        if not self.seeds:
            return []
        chooser = rng or random.Random(self.seed)
        seen: Set[int] = set(self.seeds) if exclude_seeds else set()
        first_mutable = prefix_lock // 4
        candidates: List[int] = []
        attempts = 0
        limit = count * 20
        while len(candidates) < count and attempts < limit:
            attempts += 1
            candidate = chooser.choice(self.seeds)
            for model in self.models[first_mutable:]:
                if model.segment == "dirty":
                    candidate = _with_nybble(candidate, model.index,
                                             model.sample(chooser))
                elif model.segment == "free" and \
                        chooser.random() >= keep_free:
                    candidate = _with_nybble(candidate, model.index,
                                             model.sample(chooser))
            if candidate in seen:
                continue
            seen.add(candidate)
            candidates.append(candidate)
        return candidates


def train(seeds: Iterable[int], seed: int = 0x76A) -> EntropyTga:
    """Learn an :class:`EntropyTga` from seed addresses."""
    materialized = tuple(sorted(set(seeds)))
    if not materialized:
        raise ValueError("cannot train a TGA on an empty seed set")
    models: List[NybbleModel] = []
    total = len(materialized)
    for index in range(NYBBLES):
        counts = Counter(_nybble(value, index) for value in materialized)
        distribution = tuple(sorted(
            (value, count / total) for value, count in counts.items()))
        entropy = -sum(p * math.log2(p) for _, p in distribution if p > 0)
        models.append(NybbleModel(index=index, distribution=distribution,
                                  entropy=entropy))
    return EntropyTga(seeds=materialized, models=tuple(models), seed=seed)


@dataclass(frozen=True)
class TgaEvaluation:
    """Outcome of scanning a generated candidate set."""

    seeds: int
    candidates: int
    responsive: int

    @property
    def hit_rate(self) -> float:
        return self.responsive / self.candidates if self.candidates else 0.0


def evaluate(tga: EntropyTga, engine, count: int,
             label: str = "tga") -> Tuple[TgaEvaluation, object]:
    """Generate candidates and scan them; returns (evaluation, results).

    ``engine`` is a :class:`repro.scan.engine.ScanEngine`; the full
    grab results are returned for device-type analysis.
    """
    candidates = tga.generate(count)
    results = engine.run(candidates, label=label)
    responsive: Set[int] = set()
    for protocol in ("http", "https", "ssh", "mqtt", "mqtts", "amqp",
                     "amqps", "coap"):
        responsive |= results.responsive_addresses(protocol)
    return TgaEvaluation(
        seeds=len(tga.seeds),
        candidates=len(candidates),
        responsive=len(responsive),
    ), results
