"""Shared fixtures.

Expensive artefacts (a small world, a full small-scale experiment) are
session-scoped: many test modules read them, none mutates them in ways
that break isolation (tests that need mutation build their own).
"""

from __future__ import annotations

import sys

import pytest

from repro.core.campaign import CampaignConfig
from repro.core.pipeline import ExperimentConfig, run_experiment
from repro.net.simnet import Network
from repro.world.population import World, WorldConfig, build_world

# Keep test runs from littering src/ and tests/ with __pycache__
# directories (``.gitignore`` hides them from git, but grep/find
# workflows still trip over stale .pyc trees).  conftest loads before
# any test module, so this covers the whole session.
sys.dont_write_bytecode = True

#: A scale small enough for seconds-fast tests but large enough that
#: every device type and protocol appears.
TEST_SCALE = 0.16


@pytest.fixture(autouse=True)
def _no_multiprocessing_leaks():
    """Fail any test that leaks live worker processes.

    The parallel scan backend owns real OS processes; a test that exits
    with children still alive (an unclosed pool, an un-joined worker)
    leaks resources into every later test and hides shutdown bugs.  The
    pool's context manager joins its workers, so a short grace period
    only needs to absorb process-exit latency, not real work.

    The implicit default :class:`api.ExecutionContext` pools are
    *sanctioned* persistence (bare ``workers=`` calls keep their
    workers alive for the process on purpose), so they are shut down
    here before counting: a test using them stays green, while a test
    leaking its own explicit context or pool still fails.
    """
    yield
    import multiprocessing
    import time

    from repro import api

    api.shutdown_default_contexts()
    children = multiprocessing.active_children()
    if children:
        deadline = time.monotonic() + 2.0
        while children and time.monotonic() < deadline:
            time.sleep(0.05)
            children = multiprocessing.active_children()
    assert not children, (
        f"test leaked live multiprocessing children: {children}")


def small_world_config(**overrides) -> WorldConfig:
    defaults = dict(seed=20240720, scale=TEST_SCALE)
    defaults.update(overrides)
    return WorldConfig(**defaults)


@pytest.fixture(scope="session")
def world() -> World:
    """A read-only small world shared across test modules."""
    return build_world(small_world_config())


@pytest.fixture()
def fresh_world() -> World:
    """A private world for tests that mutate (churn, campaigns)."""
    return build_world(small_world_config())


@pytest.fixture()
def network() -> Network:
    """An empty network with a fresh virtual clock."""
    return Network()


@pytest.fixture(scope="session")
def experiment():
    """One full small-scale experiment, shared by the analysis tests."""
    config = ExperimentConfig(
        world=small_world_config(),
        campaign=CampaignConfig(days=21, wire_fraction=0.02),
        rl_days=4,
        gap_days=4,
        lead_days=14,
        final_days=7,
    )
    return run_experiment(config)


def service_config(store_dir, **overrides):
    """A small-but-interesting service-campaign config.

    ``checkpoint_days=3`` keeps a checkpoint within anchor-slack reach
    of every multi-day window start, and the small segment cap forces
    window replays to cross WAL segment boundaries.  The CI
    ``service-longitudinal`` job stretches the horizon to three
    simulated weeks via ``REPRO_SERVICE_DAYS``.
    """
    import os

    from repro.service import ServiceConfig

    defaults = dict(
        world=small_world_config(scale=0.05),
        campaign=CampaignConfig(days=10 ** 9, wire_fraction=0.0),
        store_dir=str(store_dir),
        campaign_days=int(os.environ.get("REPRO_SERVICE_DAYS", "8")),
        checkpoint_days=3,
        hitlist_days=4,
        segment_max_records=512,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


@pytest.fixture(scope="session")
def service_run(tmp_path_factory):
    """One finished longitudinal campaign, shared read-only.

    Returns ``(result, run_dir)``; tests that mutate the store
    (compaction, crash/resume) build their own.
    """
    from repro import api

    run_dir = tmp_path_factory.mktemp("service") / "campaign"
    result = api.run_campaign(service_config(run_dir))
    return result, run_dir
