"""Reusable deterministic-parity harness for the scan execution modes.

The runtime promises that the three execution backends — a single
:class:`ScanEngine`, a :class:`ShardedScanEngine`, and a
:class:`ParallelShardedScanEngine` at any worker count — are
observationally equivalent under a fixed seed.  This module is the one
place that equivalence is *defined*, so every test that claims parity
asserts the same thing:

* **study tables** (table1/table2/hit rates/security/device gap) are
  identical across *all* modes, including the unsharded one;
* **EngineStats**, **cool-down snapshots**, **merged metric series**
  and **WAL record streams** are byte-identical between the sharded
  and parallel backends at equal shard counts.  (The unsharded engine
  necessarily labels its series/records ``"ntp"`` instead of
  ``"ntp/shardN"``, so per-series identity is a sharded-vs-parallel
  claim, not an unsharded one.)

What gets stripped before comparing is as important as what does not:
``parallel_``-prefixed metric series, the report's ``parallel``,
``parallel_analysis`` and ``parallel_attribution`` tables and the
``parallel_workers``/``workers`` config fields exist only in parallel
runs (wall-clock observability), and are the *only* permitted
difference.  The ``analysis_*`` series are
deterministic work counters and deliberately *not* stripped — the
analysis pool must do exactly the work the sequential path does.
"""

from __future__ import annotations

import copy
import os
from dataclasses import asdict
from pathlib import Path

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.runtime.parallel import ParallelShardedScanEngine
from repro.runtime.sharding import ShardedScanEngine

#: Worker counts every parity sweep exercises.  CI's parallel-parity
#: job pins single counts (``REPRO_PARITY_WORKERS=2`` then ``=4``) so
#: each pool width gets a full run on a genuinely multi-core runner.
WORKER_COUNTS = tuple(
    int(count) for count in
    os.environ.get("REPRO_PARITY_WORKERS", "1,2,4").split(","))


def strip_parallel(document: dict) -> dict:
    """A report document minus the fields only a parallel run carries."""
    document = copy.deepcopy(document)
    document.get("config", {}).pop("parallel_workers", None)
    document.get("config", {}).pop("workers", None)
    document.get("tables", {}).pop("parallel", None)
    document.get("tables", {}).pop("parallel_analysis", None)
    document.get("tables", {}).pop("parallel_attribution", None)
    metrics = document.get("metrics", {})
    for kind, entries in metrics.items():
        metrics[kind] = [entry for entry in entries
                         if not entry["name"].startswith("parallel_")]
    return document


def strip_parallel_metrics(registry: MetricsRegistry) -> dict:
    """A registry snapshot minus ``parallel_``-prefixed series."""
    snapshot = registry.snapshot()
    for kind, entries in snapshot.items():
        snapshot[kind] = [entry for entry in entries
                          if not entry["name"].startswith("parallel_")]
    return snapshot


def wal_records(run_dir) -> list:
    """The complete surviving WAL record stream of a run store."""
    from repro.store.wal import read_all

    records, _ = read_all(Path(run_dir) / "wal")
    return records


# -- engine-level parity ----------------------------------------------------

def run_sharded(make_world, targets, source, config, *, shards,
                label="parity"):
    """One sequential sharded scan on a fresh world; the reference."""
    world = make_world()
    registry = MetricsRegistry()
    with use_registry(registry):
        engine = ShardedScanEngine(world.network, source, config,
                                   shards=shards, name="parity")
        results = engine.run(targets, label=label)
    return {"results": results, "engine": engine, "metrics": registry}


def run_parallel(make_world, targets, source, config, *, shards, workers,
                 label="parity", pool=None):
    """One multiprocess scan on a fresh world, same contract.

    ``pool`` reuses a caller-owned persistent :class:`WorkerPool`
    (pool-reuse parity tests); omitted, the engine runs on a private
    single-batch pool exactly like the PR-4 backend did.
    """
    world = make_world()
    registry = MetricsRegistry()
    with use_registry(registry):
        engine = ParallelShardedScanEngine(world.network, source, config,
                                           shards=shards, workers=workers,
                                           name="parity", pool=pool)
        results = engine.run(targets, label=label)
    return {"results": results, "engine": engine, "metrics": registry}


def assert_results_equal(expected, actual):
    """Grab-for-grab equality of two ScanResults (order included)."""
    assert actual.targets_seen == expected.targets_seen
    assert actual.protocols() == expected.protocols()
    for protocol in expected.protocols():
        assert actual.grabs(protocol) == expected.grabs(protocol), protocol


def assert_engine_parity(make_world, targets, source, config, *,
                         shards=4, worker_counts=WORKER_COUNTS):
    """Sequential-sharded vs parallel at every worker count.

    ``make_world`` must return a *fresh*, identically seeded world per
    call — each mode runs on its own replica so no state leaks between
    comparisons.  Asserts byte-identity of results (grab-for-grab),
    EngineStats, per-shard cool-down snapshots, and metric series.
    """
    reference = run_sharded(make_world, targets, source, config,
                            shards=shards)
    for workers in worker_counts:
        candidate = run_parallel(make_world, targets, source, config,
                                 shards=shards, workers=workers)
        context = f"workers={workers}"
        assert_results_equal(reference["results"], candidate["results"])
        assert (asdict(candidate["engine"].stats)
                == asdict(reference["engine"].stats)), context
        assert (candidate["engine"].cooldown_snapshots()
                == reference["engine"].cooldown_snapshots()), context
        assert (strip_parallel_metrics(candidate["metrics"])
                == strip_parallel_metrics(reference["metrics"])), context


# -- study-level parity -----------------------------------------------------

def assert_study_parity(config_factory, *, worker_counts=WORKER_COUNTS):
    """Full-pipeline parity: ``study(workers=0)`` vs each worker count.

    ``config_factory(workers)`` must return an identically seeded
    :class:`ExperimentConfig` whose only varying field is
    ``parallel_workers``.  Compares complete report documents — config,
    every metric series, every table — after stripping the permitted
    parallel-only additions.  Returns the mode → StudyResult map so
    callers can pile on their own assertions.
    """
    from repro import api

    runs = {0: api.study(config_factory(0))}
    reference = strip_parallel(runs[0].report.as_document())
    for workers in worker_counts:
        runs[workers] = api.study(config_factory(workers))
        assert (strip_parallel(runs[workers].report.as_document())
                == reference), f"workers={workers}"
    return runs
