"""Tests for Appendix-C aggregation and Section-6 key reuse."""

import pytest

from repro.analysis import aggregate, keyreuse
from repro.scan.result import HttpGrab, ScanResults, SshGrab, TlsObservation
from repro.world.asdb import EYEBALL, AsDatabase, AutonomousSystem


@pytest.fixture()
def asdb():
    db = AsDatabase()
    for asn in (1, 2, 3, 4):
        db.register(AutonomousSystem(asn, f"AS-{asn}", EYEBALL, "DE"))
    return db


def _ssh(address, key):
    return SshGrab(address=address, time=0, ok=True,
                   banner="SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u3",
                   software="OpenSSH_9.2p1", comment="Debian-2+deb12u3",
                   key_fingerprint=key)


def _https(address, fingerprint, status=200):
    return HttpGrab(address=address, time=0, port=443, ok=True,
                    status=status, title="t",
                    tls=TlsObservation(ok=True, fingerprint=fingerprint))


class TestAggregate:
    def test_protocol_aggregate_levels(self, asdb):
        results = ScanResults()
        block = asdb.blocks_of(1)[0]
        results.add(_ssh(block + 1, b"k1"))
        results.add(_ssh(block + 2, b"k2"))
        results.add(_ssh(block + (1 << 64) + 1, b"k3"))  # a second /64
        agg = aggregate.aggregate_protocol(results, "ssh", asdb)
        assert agg["addrs"] == 3
        assert agg["/64"] == 2
        assert agg["/48"] == 1
        assert agg["ASes"] == 1
        assert agg["countries"] == 1

    def test_table5_all_protocols(self, asdb):
        table = aggregate.table5(ScanResults(), asdb)
        assert set(table) == set(
            ("http", "https", "ssh", "mqtt", "mqtts", "amqp", "amqps",
             "coap"))

    def test_gap_factor_shrinks_with_aggregation(self, asdb):
        """The paper's Appendix-C observation, in miniature: many
        hitlist addresses in one network vs few NTP addresses in many
        networks -> the gap shrinks at coarser granularity."""
        ntp = ScanResults()
        hitlist = ScanResults()
        block1, block2 = asdb.blocks_of(1)[0], asdb.blocks_of(2)[0]
        for index in range(10):  # 10 addrs, one /64
            hitlist.add(_ssh(block1 + index + 1, bytes([index])))
        for index in range(2):   # 2 addrs, two /48s
            ntp.add(_ssh(block2 + (index << 80) + 1, bytes([100 + index])))
        agg_ntp = aggregate.aggregate_protocol(ntp, "ssh", asdb)
        agg_hit = aggregate.aggregate_protocol(hitlist, "ssh", asdb)
        assert aggregate.gap_factor(agg_ntp, agg_hit, "addrs") == 5.0
        assert aggregate.gap_factor(agg_ntp, agg_hit, "/48") == 0.5

    def test_gap_factor_zero_ntp(self, asdb):
        empty = aggregate.aggregate_protocol(ScanResults(), "ssh", asdb)
        assert aggregate.gap_factor(empty, empty, "addrs") == 1.0

    def test_count_by_networks(self):
        counts = aggregate.count_by_networks([1, 2, (1 << 80) + 1])
        assert counts["IPs"] == 3
        assert counts["/48"] == 2

    def test_group_tables(self, asdb):
        results = ScanResults()
        block = asdb.blocks_of(1)[0]
        results.add(_ssh(block + 1, b"k1"))
        groups = aggregate.ssh_os_addresses(results)
        assert groups == {"Debian": {block + 1}}
        table = aggregate.group_network_table(groups)
        assert table["Debian"]["IPs"] == 1


class TestKeyReuse:
    def test_reuse_across_many_ases_detected(self, asdb):
        results = ScanResults()
        for asn in (1, 2, 3):
            results.add(_ssh(asdb.blocks_of(asn)[0] + 1, b"shared"))
        report = keyreuse.analyze("x", results, asdb)
        assert report.reused_key_count == 1
        assert report.most_used.addresses == 3
        assert report.most_used.ases == 3

    def test_two_ases_not_reuse(self, asdb):
        """Dual-homing allowance: <= 2 ASes is not counted."""
        results = ScanResults()
        for asn in (1, 2):
            results.add(_ssh(asdb.blocks_of(asn)[0] + 1, b"shared"))
        report = keyreuse.analyze("x", results, asdb)
        assert report.reused_key_count == 0

    def test_https_certificates_included(self, asdb):
        results = ScanResults()
        for asn in (1, 2, 3):
            results.add(_https(asdb.blocks_of(asn)[0] + 1, b"cert"))
        report = keyreuse.analyze("x", results, asdb)
        assert report.reused_key_count == 1

    def test_non_200_https_excluded(self, asdb):
        results = ScanResults()
        for asn in (1, 2, 3):
            results.add(_https(asdb.blocks_of(asn)[0] + 1, b"cert",
                               status=404))
        report = keyreuse.analyze("x", results, asdb)
        assert report.reused_key_count == 0

    def test_most_widespread_vs_most_used(self, asdb):
        results = ScanResults()
        # key A: many addresses, 3 ASes
        for index, asn in enumerate((1, 2, 3)):
            block = asdb.blocks_of(asn)[0]
            results.add(_ssh(block + 1, b"A"))
            results.add(_ssh(block + 2, b"A"))
        # key B: fewer addresses, 4 ASes
        for asn in (1, 2, 3, 4):
            results.add(_ssh(asdb.blocks_of(asn)[0] + 9, b"B"))
        report = keyreuse.analyze("x", results, asdb)
        assert report.most_used.addresses == 6
        assert report.most_widespread.ases == 4

    def test_empty(self, asdb):
        report = keyreuse.analyze("x", ScanResults(), asdb)
        assert report.most_used is None
        assert report.addresses_per_key == 0.0
