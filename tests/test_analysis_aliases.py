"""Tests for aliased-prefix detection and the world's aliased /64s."""

import random

import pytest

from repro.analysis.aliases import filter_aliased, is_aliased
from repro.ipv6 import parse, prefix
from repro.proto.http import HttpServerSession
from repro.proto.tls_session import PlainService
from repro.scan.modules.http import scan_http
from repro.world.hitlist import build_hitlist
from repro.world.population import build_world
from tests.conftest import small_world_config

SRC = parse("2001:db8:50::1")
ALIASED = parse("2001:db8:a11a:5ed::")
NORMAL = parse("2001:db8:42::")


@pytest.fixture()
def aliased_network(network):
    wildcard = network.add_wildcard_host(ALIASED)
    wildcard.bind_tcp(80, PlainService(lambda: HttpServerSession(None)))
    host = network.add_host(NORMAL + 1)
    host.bind_tcp(80, PlainService(lambda: HttpServerSession("real")))
    return network


class TestWildcardHosts:
    def test_every_address_answers(self, aliased_network):
        for iid in (1, 0xDEAD, 0x1234567890ABCDEF):
            grab = scan_http(aliased_network, SRC, ALIASED + iid)
            assert grab.ok

    def test_exact_host_wins_over_wildcard(self, aliased_network):
        exact = aliased_network.add_host(ALIASED + 7)
        exact.bind_tcp(80, PlainService(lambda: HttpServerSession("exact")))
        assert scan_http(aliased_network, SRC, ALIASED + 7).title == "exact"

    def test_is_wildcard(self, aliased_network):
        assert aliased_network.is_wildcard(ALIASED + 99)
        assert not aliased_network.is_wildcard(NORMAL + 1)


class TestDetection:
    def test_aliased_detected(self, aliased_network):
        assert is_aliased(aliased_network, SRC, ALIASED)

    def test_normal_subnet_not_aliased(self, aliased_network):
        assert not is_aliased(aliased_network, SRC, NORMAL)

    def test_empty_subnet_not_aliased(self, aliased_network):
        assert not is_aliased(aliased_network, SRC, parse("2001:db8:77::"))

    def test_probe_validation(self, aliased_network):
        with pytest.raises(ValueError):
            is_aliased(aliased_network, SRC, ALIASED, probes=0)


class TestFiltering:
    def test_filter_removes_aliased_cluster(self, aliased_network):
        addresses = [ALIASED + 1, ALIASED + 2, ALIASED + 3, NORMAL + 1]
        report = filter_aliased(aliased_network, SRC, addresses,
                                rng=random.Random(1))
        assert report.kept == frozenset({NORMAL + 1})
        assert report.removed == 3
        assert prefix(ALIASED, 64) in report.aliased_prefixes

    def test_single_address_not_probed(self, aliased_network):
        """min_cluster guards against probing every singleton subnet."""
        report = filter_aliased(aliased_network, SRC, [ALIASED + 1],
                                rng=random.Random(1))
        assert report.kept == frozenset({ALIASED + 1})
        assert report.aliased_count == 0


class TestWorldIntegration:
    def test_world_has_aliased_prefixes(self, world):
        assert world.aliased_prefixes
        for prefix64 in world.aliased_prefixes:
            assert world.network.is_wildcard(prefix64 + 0x1234)

    def test_hitlist_public_dealiased(self):
        world = build_world(small_world_config())
        hitlist = build_hitlist(world)
        assert hitlist.aliased_prefixes
        flagged_world_prefixes = set(hitlist.aliased_prefixes)
        assert flagged_world_prefixes <= set(world.aliased_prefixes)
        for value in hitlist.public:
            assert prefix(value, 64) not in hitlist.aliased_prefixes
