"""Tests for device-type identification (Table 3 machinery)."""

import pytest

from repro.analysis import devicetypes
from repro.scan.result import CoapGrab, HttpGrab, ScanResults, SshGrab, TlsObservation


def _https(address, title, fingerprint, status=200, ok=True):
    return HttpGrab(address=address, time=0, port=443, ok=ok, status=status,
                    title=title,
                    tls=TlsObservation(ok=True, fingerprint=fingerprint))


def _ssh(address, software, comment, key):
    return SshGrab(address=address, time=0, ok=True,
                   banner=f"SSH-2.0-{software} {comment or ''}".strip(),
                   software=software, comment=comment, key_fingerprint=key)


def _coap(address, resources):
    return CoapGrab(address=address, time=0, ok=True,
                    resources=tuple(resources))


class TestHttpTitles:
    def test_count_by_unique_certificate(self):
        results = ScanResults()
        results.add(_https(1, "FRITZ!Box", b"c1"))
        results.add(_https(2, "FRITZ!Box", b"c1"))  # same device, new addr
        results.add(_https(3, "FRITZ!Box", b"c2"))
        groups = devicetypes.http_title_groups(results)
        assert groups[0].representative == "FRITZ!Box"
        assert groups[0].count == 2

    def test_non_200_excluded(self):
        results = ScanResults()
        results.add(_https(1, "Error", b"c1", status=404))
        assert devicetypes.http_title_groups(results) == []

    def test_failed_tls_excluded(self):
        results = ScanResults()
        results.add(HttpGrab(address=1, time=0, port=443, ok=True,
                             status=200, title="x",
                             tls=TlsObservation(ok=False)))
        assert devicetypes.http_title_groups(results) == []

    def test_no_title_bucket(self):
        results = ScanResults()
        results.add(_https(1, None, b"c1"))
        groups = devicetypes.http_title_groups(results)
        assert groups[0].representative == devicetypes.NO_TITLE

    def test_near_titles_cluster(self):
        results = ScanResults()
        results.add(_https(1, "Plesk Obsidian 18.0.34", b"c1"))
        results.add(_https(2, "Plesk Obsidian 18.0.52", b"c2"))
        groups = devicetypes.http_title_groups(results)
        assert len(groups) == 1
        assert groups[0].count == 2


class TestSshOs:
    def test_count_by_unique_key(self):
        results = ScanResults()
        results.add(_ssh(1, "OpenSSH_9.2p1", "Debian-2", b"k1"))
        results.add(_ssh(2, "OpenSSH_9.2p1", "Debian-2", b"k1"))
        results.add(_ssh(3, "OpenSSH_9.6p1", "Ubuntu-3ubuntu13.5", b"k2"))
        counts = devicetypes.ssh_os_counts(results)
        assert counts["Debian"] == 1
        assert counts["Ubuntu"] == 1

    def test_unknown_os_bucket(self):
        results = ScanResults()
        results.add(_ssh(1, "dropbear_2022.83", None, b"k1"))
        counts = devicetypes.ssh_os_counts(results)
        assert counts["other/unknown"] == 1

    def test_all_buckets_present(self):
        counts = devicetypes.ssh_os_counts(ScanResults())
        assert set(counts) == set(devicetypes.SSH_OS_BUCKETS)


class TestCoapGroups:
    @pytest.mark.parametrize("resources,expected", [
        (("/castDeviceSearch", "/castSetup"), "castdevice"),
        (("/qlink/reg", "/qlink/status"), "qlink"),
        (("/m", "/c", "/t", "/.well-known/core"), "efento"),
        (("/panel/effects", "/panel/state"), "nanoleaf"),
        ((), "empty"),
        (("/.well-known/core",), "empty"),
        (("/maha", "/.well-known/core"), "other"),
    ])
    def test_classification(self, resources, expected):
        assert devicetypes.coap_resource_group(resources) == expected

    def test_counts_dedupe_addresses(self):
        results = ScanResults()
        results.add(_coap(1, ["/castDeviceSearch"]))
        results.add(_coap(1, ["/castDeviceSearch"]))
        results.add(_coap(2, ["/qlink/reg"]))
        counts = devicetypes.coap_group_counts(results)
        assert counts["castdevice"] == 1
        assert counts["qlink"] == 1


class TestTable3:
    def test_build_and_query(self):
        ntp = ScanResults()
        ntp.add(_https(1, "FRITZ!Box", b"c1"))
        hitlist = ScanResults()
        hitlist.add(_https(2, "D-LINK", b"c2"))
        table = devicetypes.build_table3(ntp, hitlist)
        assert table.http_group_count("ntp", "FRITZ!Box") == 1
        assert table.http_group_count("ntp", "D-LINK") == 0
        assert table.http_group_count("hitlist", "D-LINK") == 1

    def test_new_or_underrepresented(self):
        ntp = ScanResults()
        for index in range(10):
            ntp.add(_https(index, "FRITZ!Box", f"c{index}".encode()))
        ntp.add(_ssh(100, "OpenSSH_9.2p1", "Raspbian-2+deb12u3", b"k1"))
        hitlist = ScanResults()
        hitlist.add(_https(200, "FRITZ!Box", b"h1"))
        table = devicetypes.build_table3(ntp, hitlist)
        findings = devicetypes.new_or_underrepresented(table, factor=5.0)
        assert "http:FRITZ!Box" in findings
        assert findings["http:FRITZ!Box"] == (10, 1)
        assert "ssh:Raspbian" in findings


class TestCoapMacDedup:
    def test_counts_macs(self):
        from repro.ipv6 import eui64
        from repro.ipv6.address import parse, with_iid

        results = ScanResults()
        prefix = parse("2001:db8::")
        mac = 0xE47001000001
        # Same device at two addresses (prefix churn), plus a privacy one.
        results.add(_coap(with_iid(prefix, eui64.mac_to_iid(mac)),
                          ["/castDeviceSearch"]))
        results.add(_coap(with_iid(parse("2001:db8:1::"),
                                   eui64.mac_to_iid(mac)),
                          ["/castDeviceSearch"]))
        results.add(_coap(parse("2001:db8::abcd:ef01:2345:6789"),
                          ["/qlink/reg"]))
        with_mac, distinct = devicetypes.coap_mac_dedup(results)
        assert with_mac == 2
        assert distinct == 1

    def test_empty(self):
        assert devicetypes.coap_mac_dedup(ScanResults()) == (0, 0)


class TestBugfixRegressions:
    def test_empty_title_distinct_from_missing_tag(self):
        """``<title></title>`` and no tag at all are different devices."""
        results = ScanResults()
        results.add(_https(1, "", b"c1"))      # empty-but-present tag
        results.add(_https(2, None, b"c2"))    # no tag at all
        titles = devicetypes.http_titles_by_certificate(results)
        assert titles[b"c1"] == devicetypes.EMPTY_TITLE
        assert titles[b"c2"] == devicetypes.NO_TITLE
        groups = devicetypes.http_title_groups(results)
        assert {group.representative for group in groups} == \
            {devicetypes.EMPTY_TITLE, devicetypes.NO_TITLE}

    def test_findings_skip_both_titleless_buckets(self):
        results = ScanResults()
        for index in range(12):
            results.add(_https(index, "", f"c{index}".encode()))
            results.add(_https(100 + index, None, f"n{index}".encode()))
        table = devicetypes.build_table3(results, ScanResults())
        assert devicetypes.new_or_underrepresented(table) == {}

    def test_findings_match_hitlist_group_by_membership(self):
        """A hitlist group whose *member* covers the NTP representative
        counts — the seed's exact-representative match scored it zero
        and invented a finding."""
        ntp = ScanResults()
        for index in range(6):
            ntp.add(_https(index, "FRITZ!Box 7590", f"c{index}".encode()))
        hitlist = ScanResults()
        for index in range(3):
            hitlist.add(_https(200 + index, "FRITZ!Box 7490",
                               f"h{index}".encode()))
        hitlist.add(_https(300, "FRITZ!Box 7590", b"h9"))
        table = devicetypes.build_table3(ntp, hitlist)
        # Clustered under the more frequent 7490 representative…
        assert table.http_group("hitlist", "FRITZ!Box 7590").count == 4
        # …so the NTP group is covered: 6 certificates vs 4, no finding.
        findings = devicetypes.new_or_underrepresented(table, factor=5.0)
        assert "http:FRITZ!Box 7590" not in findings

    def test_findings_match_hitlist_group_by_threshold(self):
        """No shared member at all, but the representatives are within
        the clustering threshold — still the same device type."""
        ntp = ScanResults()
        for index in range(6):
            ntp.add(_https(index, "FRITZ!Box 7590", f"c{index}".encode()))
        hitlist = ScanResults()
        for index in range(3):
            hitlist.add(_https(200 + index, "FRITZ!Box 7490",
                               f"h{index}".encode()))
        table = devicetypes.build_table3(ntp, hitlist)
        findings = devicetypes.new_or_underrepresented(table, factor=5.0)
        assert "http:FRITZ!Box 7590" not in findings

    def test_genuinely_new_group_still_reported(self):
        ntp = ScanResults()
        for index in range(6):
            ntp.add(_https(index, "Industrial PLC gateway",
                           f"c{index}".encode()))
        hitlist = ScanResults()
        hitlist.add(_https(200, "FRITZ!Box 7490", b"h1"))
        table = devicetypes.build_table3(ntp, hitlist)
        findings = devicetypes.new_or_underrepresented(table, factor=5.0)
        assert findings["http:Industrial PLC gateway"] == (6, 0)
