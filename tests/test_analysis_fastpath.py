"""The analysis fast path: banded distance, pruning, parallel driver.

Three equivalence claims hold this PR together, and each gets a
property here:

* the banded DP returns the exact distance whenever the true distance
  fits the bound, and *some* value above the bound otherwise;
* the pruned+banded clusterer emits byte-identical groups to the
  unoptimized reference scan on arbitrary corpora;
* the parallel analysis driver's bundle and metrics are byte-identical
  to the sequential path's.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import devicetypes
from repro.analysis.levenshtein import (
    ClusterStats,
    DistanceCache,
    TitleClusterer,
    cluster_counts,
    distance,
    distance_bound,
    normalized_distance,
    within,
)
from repro.analysis.parallel import analysis_tasks, run_analysis
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.scan.result import (
    BrokerGrab,
    CoapGrab,
    HttpGrab,
    ScanResults,
    SshGrab,
    TlsObservation,
)

#: Small alphabet so random strings actually collide within threshold.
TITLES = st.text(alphabet="ab-XY 0123", max_size=14)


class TestBandedDistanceProperties:
    @given(TITLES, TITLES, st.integers(min_value=0, max_value=16))
    @settings(max_examples=300)
    def test_banded_exact_within_bound(self, left, right, bound):
        """Banded result == plain result whenever the truth fits."""
        true = distance(left, right)
        banded = distance(left, right, upper_bound=bound)
        if true <= bound:
            assert banded == true
        else:
            assert banded > bound

    @given(TITLES, TITLES)
    @settings(max_examples=200)
    def test_within_banded_matches_legacy_float_compare(self, left, right):
        """The banded verdict == the seed's normalized-distance test."""
        for threshold in (0.0, 0.1, 0.25, 0.5, 1.0):
            legacy = normalized_distance(left, right) <= threshold \
                if max(len(left), len(right)) else True
            assert within(left, right, threshold, banded=True) == legacy
            assert within(left, right, threshold, banded=False) == legacy

    @given(st.floats(min_value=0.0, max_value=1.0,
                     allow_nan=False, allow_infinity=False),
           st.integers(min_value=1, max_value=200))
    @settings(max_examples=200)
    def test_distance_bound_is_exact(self, threshold, longest):
        """bound is the largest d with d/longest <= threshold, exactly."""
        bound = distance_bound(threshold, longest)
        assert 0 <= bound <= longest
        if bound:
            assert bound / longest <= threshold
        if bound < longest:
            assert (bound + 1) / longest > threshold

    def test_band_saves_cells_and_counts_exits(self):
        plain = ClusterStats()
        fast = ClusterStats()
        left, right = "FRITZ!Box 7590 Router", "totally different text!"
        distance(left, right, stats=plain)
        result = distance(left, right, upper_bound=3, stats=fast)
        assert result > 3
        assert fast.band_exits == 1
        assert 0 < fast.dp_cells < plain.dp_cells

    def test_bound_zero_is_equality_test(self):
        assert distance("same", "same", upper_bound=0) == 0
        assert distance("same", "sane", upper_bound=0) > 0

    def test_negative_bound_rejected(self):
        try:
            distance("a", "b", upper_bound=-1)
        except ValueError:
            pass
        else:
            raise AssertionError("upper_bound=-1 accepted")


class TestDistanceCache:
    def test_symmetric_and_counted(self):
        cache = DistanceCache()
        cache.store("abc", "abd", 1)
        assert cache.lookup("abd", "abc") == 1
        assert cache.lookup("abc", "zzz") is None
        assert len(cache) == 1

    def test_clusterer_hits_cache_on_repeat_comparison(self):
        stats = ClusterStats()
        clusterer = TitleClusterer(stats=stats)
        clusterer.add("Plesk Obsidian 18.0.50")
        # One clustering pass compares each unordered pair at most once
        # (assigned titles take the exact-title fast path), so force a
        # repeat of the same (title, representative) test: the second
        # run must answer from the cache without any DP cells.
        assert clusterer._pair_matches("Plesk Obsidian 18.0.51", 0, None)
        cells_after_first = stats.dp_cells
        assert stats.cache_hits == 0
        assert clusterer._pair_matches("Plesk Obsidian 18.0.51", 0, None)
        assert stats.cache_hits == 1
        assert stats.dp_cells == cells_after_first


def _reference_groups(counts, threshold=0.25):
    """The unoptimized seed-era scan: full DP, no pruning."""
    return cluster_counts(counts, threshold, banded=False, prune=False)


def _shape(groups):
    return [(g.representative, dict(g.members)) for g in groups]


class TestClustererEquivalence:
    @given(st.lists(st.tuples(TITLES, st.integers(min_value=1, max_value=9)),
                    max_size=25))
    @settings(max_examples=150, deadline=None)
    def test_pruned_equals_reference_on_random_corpora(self, counts):
        fast_stats = ClusterStats()
        plain_stats = ClusterStats()
        fast = cluster_counts(counts, stats=fast_stats)
        plain = _reference_groups(counts)
        assert _shape(fast) == _shape(plain)
        assert fast_stats.pairs_compared <= plain_stats.pairs_compared \
            or plain_stats.pairs_compared == 0

    @given(st.lists(st.tuples(TITLES, st.integers(min_value=1, max_value=9)),
                    max_size=25))
    @settings(max_examples=100, deadline=None)
    def test_each_prune_stage_alone_preserves_output(self, counts):
        reference = _shape(_reference_groups(counts))
        assert _shape(cluster_counts(counts, banded=True,
                                     prune=False)) == reference
        assert _shape(cluster_counts(counts, banded=False,
                                     prune=True)) == reference

    def test_version_variants_still_group(self):
        corpus = [("FRITZ!Box 7590", 10), ("FRITZ!Box 7490", 5),
                  ("FRITZ!Box 5590", 2), ("Plesk Obsidian", 4)]
        fast = cluster_counts(corpus)
        assert _shape(fast) == _shape(_reference_groups(corpus))
        assert fast[0].representative == "FRITZ!Box 7590"
        assert set(fast[0].members) == {"FRITZ!Box 7590", "FRITZ!Box 7490",
                                        "FRITZ!Box 5590"}

    def test_pruning_actually_prunes(self):
        corpus = [(f"device type {i:04d} banner", 1) for i in range(20)]
        corpus += [("x", 1), ("this is a much longer unrelated title", 1)]
        stats = ClusterStats()
        cluster_counts(corpus, stats=stats)
        assert stats.candidates_pruned > 0


class TestMetricsPublication:
    def test_http_title_groups_publishes_counters(self):
        results = ScanResults()
        for i, title in enumerate(["FRITZ!Box 7590", "FRITZ!Box 7490",
                                   "Plesk Obsidian"]):
            results.https.append(HttpGrab(
                address=i, time=0.0, port=443, ok=True, status=200,
                title=title,
                tls=TlsObservation(ok=True, fingerprint=bytes([i]))))
        registry = MetricsRegistry()
        with use_registry(registry):
            devicetypes.http_title_groups(results, dataset="ntp")
        counters = {(entry["name"], tuple(sorted(entry["labels"].items())))
                    for entry in registry.snapshot()["counters"]}
        expected_labels = (("dataset", "ntp"), ("table", "table3_http"))
        for name in ("analysis_pairs_compared_total",
                     "analysis_dp_cells_total",
                     "analysis_band_exits_total",
                     "analysis_cache_hits_total",
                     "analysis_candidates_pruned_total"):
            assert (name, expected_labels) in counters, name


def _synthetic_results(label, http=12, salt=0):
    results = ScanResults(label=label)
    for i in range(http):
        results.https.append(HttpGrab(
            address=i + salt, time=0.0, port=443, ok=True, status=200,
            title=f"FRITZ!Box 7{(i + salt) % 6}90",
            tls=TlsObservation(ok=True,
                               fingerprint=bytes([i % 5, salt]) + b"fp")))
    results.ssh.append(SshGrab(
        address=100 + salt, time=0.0, ok=True,
        banner="SSH-2.0-OpenSSH_8.4p1 Debian-5",
        software="OpenSSH_8.4p1", comment="Debian-5",
        key_fingerprint=bytes([salt]) + b"key"))
    results.mqtt.append(BrokerGrab(
        address=200 + salt, time=0.0, port=1883, protocol="mqtt",
        ok=True, open_access=None))
    results.mqtts.append(BrokerGrab(
        address=200 + salt, time=0.0, port=8883, protocol="mqtts",
        ok=True, open_access=False))
    results.amqp.append(BrokerGrab(
        address=201 + salt, time=0.0, port=5672, protocol="amqp",
        ok=True, open_access=True))
    results.coap.append(CoapGrab(
        address=300 + salt, time=0.0, ok=True, resources=("/castDevice",)))
    return results


class TestParallelAnalysisDriver:
    def _run(self, workers):
        registry = MetricsRegistry()
        with use_registry(registry):
            bundle = run_analysis(_synthetic_results("ntp"),
                                  _synthetic_results("hitlist", salt=3),
                                  workers=workers)
        return bundle, registry

    def test_pool_output_byte_identical_to_sequential(self):
        sequential, seq_registry = self._run(0)
        pooled, pool_registry = self._run(2)
        assert pooled.table3 == sequential.table3
        assert pooled.ssh == sequential.ssh
        assert pooled.brokers == sequential.brokers
        assert pooled.secure == sequential.secure
        assert pooled.keyreuse == sequential.keyreuse
        assert pool_registry.snapshot() == seq_registry.snapshot()

    def test_timing_stays_out_of_the_registry(self):
        bundle, registry = self._run(2)
        assert bundle.timing["workers"] == 2
        assert {job["job"] for job in bundle.timing["jobs"]} == \
            {task.job for task in analysis_tasks(
                _synthetic_results("ntp"),
                _synthetic_results("hitlist", salt=3))}
        names = {entry["name"] for kind in registry.snapshot().values()
                 for entry in kind}
        assert not any("seconds" in name or "wall" in name
                       for name in names), names

    def test_task_list_order_is_fixed(self):
        ntp = _synthetic_results("ntp")
        hitlist = _synthetic_results("hitlist", salt=3)
        jobs = [task.job for task in analysis_tasks(ntp, hitlist)]
        assert jobs == [
            "table3_http:ntp", "table3_ssh:ntp", "table3_coap:ntp",
            "fig2_ssh:ntp", "fig3_mqtt:ntp", "fig3_amqp:ntp",
            "table3_http:hitlist", "table3_ssh:hitlist",
            "table3_coap:hitlist", "fig2_ssh:hitlist",
            "fig3_mqtt:hitlist", "fig3_amqp:hitlist",
        ]

    def test_negative_workers_rejected(self):
        try:
            run_analysis(ScanResults(), ScanResults(), workers=-1)
        except ValueError:
            pass
        else:
            raise AssertionError("workers=-1 accepted")

    def test_secure_share_matches_security_module(self):
        from repro.analysis import security

        ntp = _synthetic_results("ntp")
        hitlist = _synthetic_results("hitlist", salt=3)
        with use_registry():
            bundle = run_analysis(ntp, hitlist, workers=0)
        expected = security.security_gap(ntp, hitlist)
        assert bundle.security_gap() == expected
