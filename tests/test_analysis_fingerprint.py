"""Tests for dynamic-address host fingerprinting (future-work feature)."""

import pytest

from repro.analysis import fingerprint
from repro.ipv6 import eui64
from repro.ipv6.address import parse, with_iid

P1 = parse("2001:db8:1:1::")
P2 = parse("2001:db8:2:2::")
P3 = parse("2001:db8:3:3::")


def _mac_addr(mac, prefix):
    return with_iid(prefix, eui64.mac_to_iid(mac))


class TestDedupAddresses:
    def test_mac_clusters_across_prefixes(self):
        mac = 0xB827EB000001
        report = fingerprint.dedup_addresses([
            _mac_addr(mac, P1), _mac_addr(mac, P2), _mac_addr(mac, P3),
        ])
        assert len(report.clusters) == 1
        cluster = report.clusters[0]
        assert cluster.kind == "mac"
        assert cluster.identity == mac
        assert cluster.address_count == 3
        assert cluster.prefix_count == 3
        assert report.lower_bound == 1
        assert report.upper_bound == 1

    def test_distinct_macs_distinct_hosts(self):
        report = fingerprint.dedup_addresses([
            _mac_addr(0xB827EB000001, P1),
            _mac_addr(0xB827EB000002, P1 + (1 << 64)),
        ])
        assert len(report.clusters) == 2

    def test_local_macs_not_identities(self):
        """Locally administered MACs may be reused: not a fingerprint."""
        local_mac = 0x0255AA000001
        report = fingerprint.dedup_addresses([_mac_addr(local_mac, P1)])
        # Falls through to the stable-IID path (EUI-64-shaped IID is
        # classified as eui64, not stable) -> unattributable.
        assert report.identified_hosts == 0

    def test_stable_iid_tracks_host(self):
        identifier = 0x1234  # structured, non-generic
        report = fingerprint.dedup_addresses([
            with_iid(P1, identifier), with_iid(P2, identifier),
        ])
        assert len(report.clusters) == 1
        assert report.clusters[0].kind == "stable-iid"
        assert report.clusters[0].address_count == 2

    def test_generic_low_iids_not_identities(self):
        """::1 in two networks is two routers, not one moving host."""
        report = fingerprint.dedup_addresses([
            with_iid(P1, 1), with_iid(P2, 1),
        ])
        assert report.identified_hosts == 0
        assert report.unattributable == 2
        assert report.lower_bound == 1
        assert report.upper_bound == 2

    def test_privacy_addresses_unattributable(self):
        report = fingerprint.dedup_addresses([
            with_iid(P1, 0x8D4F19C277ABE03D),
            with_iid(P1, 0x19C277ABE03D8D4F),
        ])
        assert report.unattributable == 2
        assert report.deduplication_factor == pytest.approx(1.0)

    def test_mixed_population_bounds(self):
        mac = 0xB827EB00000A
        addresses = [
            _mac_addr(mac, P1), _mac_addr(mac, P2),   # one host, 2 addrs
            with_iid(P1, 0x4242), with_iid(P3, 0x4242),  # one host, 2 addrs
            with_iid(P2, 0xF00DBEEFCAFE1234),          # privacy sighting
        ]
        report = fingerprint.dedup_addresses(addresses)
        assert report.total_addresses == 5
        assert report.identified_hosts == 2
        assert report.lower_bound == 3   # 2 clusters + >=1 privacy host
        assert report.upper_bound == 3   # 2 clusters + 1 privacy addr
        assert report.deduplication_factor > 1.0

    def test_empty(self):
        report = fingerprint.dedup_addresses([])
        assert report.lower_bound == 0
        assert report.upper_bound == 0
        assert report.deduplication_factor == 1.0


class TestOnCollectedData:
    def test_tightens_bounds_on_real_dataset(self, experiment):
        report = fingerprint.dedup_addresses(
            experiment.ntp_dataset.iter_addresses())
        assert report.total_addresses == len(experiment.ntp_dataset)
        # EUI-64 devices really do appear under several prefixes.
        assert any(cluster.prefix_count > 1 for cluster in report.clusters)
        assert report.upper_bound < report.total_addresses

    def test_compare_with_key_bound(self, experiment):
        report = fingerprint.dedup_addresses(
            experiment.ntp_dataset.iter_addresses())
        keys = len(experiment.ntp_scan.unique_fingerprints("https"))
        summary = fingerprint.compare_with_key_bound(report, keys)
        assert summary["fingerprint_lower"] <= summary["fingerprint_upper"]
        assert summary["dedup_factor"] >= 1.0
