"""Golden delta audit for the analysis-layer bugfixes.

The banded/pruned fast path must change *nothing* (covered by the
equivalence properties), but four deliberate bugfixes may move
seed-era headline values.  This suite replays the seed commit's buggy
logic next to the fixed one on the golden experiment and asserts every
delta is explained by exactly the bug that was fixed — no silent
behaviour change rides along.
"""

import pytest

from repro.analysis import devicetypes, security
from repro.analysis.security import _grab_outdated
from repro.core.campaign import CampaignConfig
from repro.core.pipeline import ExperimentConfig, run_experiment
from repro.world.population import WorldConfig


@pytest.fixture(scope="module")
def golden():
    config = ExperimentConfig(
        world=WorldConfig(seed=20240720, scale=0.05),
        campaign=CampaignConfig(days=5, wire_fraction=0.0),
        include_rl=False, gap_days=1, lead_days=3, final_days=1,
    )
    return run_experiment(config)


# -- seed-era replicas (the buggy logic, verbatim in behaviour) ----------

def _seed_titles(results):
    """``grab.title or NO_TITLE`` — collapses "" into NO_TITLE."""
    titles = {}
    for grab in results.https:
        if not grab.ok or grab.status != 200:
            continue
        if grab.tls is None or not grab.tls.ok \
                or grab.tls.fingerprint is None:
            continue
        titles.setdefault(grab.tls.fingerprint,
                          grab.title or devicetypes.NO_TITLE)
    return titles


def _seed_findings(table, factor=5.0):
    """HTTP findings by exact representative equality only."""
    hit_by_rep = {g.representative: g.count for g in table.http_hitlist}
    findings = {}
    for group in table.http_ntp:
        if group.representative in (devicetypes.NO_TITLE,
                                    devicetypes.EMPTY_TITLE):
            continue
        hit = hit_by_rep.get(group.representative, 0)
        if group.count > factor * hit:
            findings[f"http:{group.representative}"] = (group.count, hit)
    return findings


def _seed_ssh(results):
    """Key slot burned by the first grab, assessable or not."""
    seen = set()
    assessed = outdated = unassessable = 0
    for grab in results.ssh:
        if not grab.ok or grab.key_fingerprint is None:
            continue
        if grab.key_fingerprint in seen:
            continue
        seen.add(grab.key_fingerprint)
        verdict = _grab_outdated(grab)
        if verdict is None:
            unassessable += 1
            continue
        assessed += 1
        if verdict:
            outdated += 1
    return assessed, outdated, unassessable


def _seed_broker(results, protocol):
    """Address consumed by the first grab, conclusive or not."""
    grabs = list(results.grabs(protocol)) + list(results.grabs(protocol + "s"))
    seen = set()
    open_count = controlled = unknown = 0
    for grab in grabs:
        if not grab.ok or grab.address in seen:
            continue
        seen.add(grab.address)
        if grab.open_access is None:
            unknown += 1
        elif grab.open_access:
            open_count += 1
        else:
            controlled += 1
    return open_count, controlled, unknown


# -- the audits ----------------------------------------------------------

class TestTitleDeltas:
    def test_labels_differ_only_on_empty_titles(self, golden):
        for results in (golden.ntp_scan, golden.hitlist_scan):
            seed = _seed_titles(results)
            fixed = devicetypes.http_titles_by_certificate(results)
            assert seed.keys() == fixed.keys()
            for fingerprint, label in fixed.items():
                if label == devicetypes.EMPTY_TITLE:
                    assert seed[fingerprint] == devicetypes.NO_TITLE
                else:
                    assert seed[fingerprint] == label


class TestFindingsDeltas:
    def test_fix_only_removes_findings_and_each_removal_is_explained(
            self, golden):
        table = devicetypes.build_table3(golden.ntp_scan,
                                         golden.hitlist_scan)
        seed = _seed_findings(table)
        fixed = devicetypes.new_or_underrepresented(table)
        fixed_http = {key: value for key, value in fixed.items()
                      if key.startswith("http:")}
        # Membership/threshold matching can only find *more* hitlist
        # coverage than exact-representative matching, so findings can
        # only disappear or shrink — never appear.
        assert set(fixed_http) <= set(seed)
        for key in set(seed) - set(fixed_http):
            representative = key[len("http:"):]
            match = table.http_group("hitlist", representative,
                                     threshold=0.25)
            assert match is not None, \
                f"finding {key!r} vanished without a matching hitlist group"
        # Non-HTTP findings flow through unchanged logic.
        for key, value in fixed.items():
            if not key.startswith("http:"):
                assert value[0] > 5.0 * value[1]


class TestSshDeltas:
    def test_delta_explained_by_unassessable_first_grabs(self, golden):
        for label, results in (("ntp", golden.ntp_scan),
                               ("hitlist", golden.hitlist_scan)):
            seed_assessed, seed_outdated, seed_unassessable = \
                _seed_ssh(results)
            fixed = security.ssh_outdatedness(label, results)
            assert fixed.assessed >= seed_assessed
            assert fixed.unassessable <= seed_unassessable
            if (fixed.assessed, fixed.outdated) != \
                    (seed_assessed, seed_outdated):
                # Some key must show the unassessable-then-assessable
                # pattern the fix exists for.
                first_verdict = {}
                rescued = False
                for grab in results.ssh:
                    if not grab.ok or grab.key_fingerprint is None:
                        continue
                    verdict = _grab_outdated(grab)
                    if grab.key_fingerprint not in first_verdict:
                        first_verdict[grab.key_fingerprint] = verdict
                    elif first_verdict[grab.key_fingerprint] is None \
                            and verdict is not None:
                        rescued = True
                assert rescued, f"{label}: SSH delta without rescued key"


class TestBrokerDeltas:
    @pytest.mark.parametrize("protocol", ["mqtt", "amqp"])
    def test_delta_explained_by_unknown_then_conclusive(self, golden,
                                                        protocol):
        for label, results in (("ntp", golden.ntp_scan),
                               ("hitlist", golden.hitlist_scan)):
            seed_open, seed_controlled, seed_unknown = \
                _seed_broker(results, protocol)
            fixed = security.broker_access_control(label, results, protocol)
            assert fixed.unknown <= seed_unknown
            assert fixed.total >= seed_open + seed_controlled
            if (fixed.open_count, fixed.controlled, fixed.unknown) != \
                    (seed_open, seed_controlled, seed_unknown):
                grabs = list(results.grabs(protocol)) \
                    + list(results.grabs(protocol + "s"))
                first = {}
                rescued = False
                for grab in grabs:
                    if not grab.ok:
                        continue
                    if grab.address not in first:
                        first[grab.address] = grab.open_access
                    elif first[grab.address] is None \
                            and grab.open_access is not None:
                        rescued = True
                assert rescued, \
                    f"{label}/{protocol}: delta without rescued address"
