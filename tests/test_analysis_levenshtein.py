"""Unit and property tests for Levenshtein distance and title clustering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.levenshtein import (
    TitleClusterer,
    cluster_counts,
    distance,
    normalized_distance,
    within,
)

SHORT_TEXT = st.text(alphabet="abcdef !", max_size=12)


class TestDistance:
    @pytest.mark.parametrize("left,right,expected", [
        ("", "", 0),
        ("abc", "abc", 0),
        ("abc", "", 3),
        ("", "abc", 3),
        ("kitten", "sitting", 3),
        ("flaw", "lawn", 2),
        ("FRITZ!Box 7590", "FRITZ!Box 7490", 1),
    ])
    def test_known_values(self, left, right, expected):
        assert distance(left, right) == expected

    @given(SHORT_TEXT, SHORT_TEXT)
    def test_symmetry(self, left, right):
        assert distance(left, right) == distance(right, left)

    @given(SHORT_TEXT, SHORT_TEXT)
    def test_bounds(self, left, right):
        d = distance(left, right)
        assert abs(len(left) - len(right)) <= d <= max(len(left), len(right))

    @given(SHORT_TEXT, SHORT_TEXT, SHORT_TEXT)
    @settings(max_examples=40)
    def test_triangle_inequality(self, a, b, c):
        assert distance(a, c) <= distance(a, b) + distance(b, c)

    @given(SHORT_TEXT)
    def test_identity(self, text):
        assert distance(text, text) == 0


class TestNormalized:
    def test_empty_pair(self):
        assert normalized_distance("", "") == 0.0

    def test_scales_to_one(self):
        assert normalized_distance("abc", "xyz") == 1.0

    def test_version_variation_within_quarter(self):
        """The paper's motivating case: version strings group together."""
        assert within("Plesk Obsidian 18.0.34", "Plesk Obsidian 18.0.52")

    def test_different_products_not_within(self):
        assert not within("FRITZ!Box", "D-LINK")

    @given(SHORT_TEXT, SHORT_TEXT)
    def test_range(self, left, right):
        assert 0.0 <= normalized_distance(left, right) <= 1.0

    def test_length_shortcut_consistent(self):
        # 'within' must agree with the exact computation.
        pairs = [("abcdefgh", "ab"), ("aaaa", "aaab"), ("x", "xy")]
        for left, right in pairs:
            assert within(left, right) == \
                (normalized_distance(left, right) <= 0.25)


class TestClusterer:
    def test_near_titles_group(self):
        clusterer = TitleClusterer()
        clusterer.add("FRITZ!Box 7590")
        clusterer.add("FRITZ!Box 7490")
        clusterer.add("D-LINK Router")
        assert len(clusterer.groups) == 2

    def test_counts_accumulate(self):
        clusterer = TitleClusterer()
        clusterer.add("FRITZ!Box", count=10)
        clusterer.add("FRITZ!Box", count=5)
        group = clusterer.group_of("FRITZ!Box")
        assert group.count == 15

    def test_representative_is_first(self):
        clusterer = TitleClusterer()
        clusterer.add("Plesk Obsidian 18.0.34")
        group = clusterer.add("Plesk Obsidian 18.0.52")
        assert group.representative == "Plesk Obsidian 18.0.34"

    def test_exact_fast_path(self):
        clusterer = TitleClusterer()
        first = clusterer.add("Welcome to nginx!")
        second = clusterer.add("Welcome to nginx!")
        assert first is second

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            TitleClusterer(threshold=2.0)

    def test_cluster_counts_sorted(self):
        groups = cluster_counts([
            ("FRITZ!Box", 100),
            ("D-LINK", 10),
            ("FRITZ!Box 2", 3),
        ])
        assert groups[0].representative == "FRITZ!Box"
        assert groups[0].count == 103
        assert groups[1].count == 10

    def test_group_of_unknown(self):
        assert TitleClusterer().group_of("nope") is None


class TestBandedDistance:
    @pytest.mark.parametrize("left,right,expected", [
        ("", "", 0),
        ("abc", "abc", 0),
        ("kitten", "sitting", 3),
        ("FRITZ!Box 7590", "FRITZ!Box 7490", 1),
        ("flaw", "lawn", 2),
    ])
    def test_known_values_inside_band(self, left, right, expected):
        for bound in (expected, expected + 1, expected + 5):
            assert distance(left, right, upper_bound=bound) == expected

    @pytest.mark.parametrize("left,right,true", [
        ("kitten", "sitting", 3),
        ("abcdef", "ghijkl", 6),
        ("short", "a very different long string", 25),
    ])
    def test_exceeding_band_reports_above_bound(self, left, right, true):
        for bound in range(true):
            assert distance(left, right, upper_bound=bound) > bound

    def test_bound_zero_is_equality(self):
        assert distance("abc", "abc", upper_bound=0) == 0
        assert distance("abc", "abd", upper_bound=0) > 0

    def test_length_gap_short_circuits(self):
        from repro.analysis.levenshtein import ClusterStats

        stats = ClusterStats()
        result = distance("ab", "abcdefgh", upper_bound=3, stats=stats)
        assert result > 3
        assert stats.dp_cells == 0  # rejected before any DP

    @given(SHORT_TEXT, SHORT_TEXT, st.integers(min_value=0, max_value=12))
    @settings(max_examples=200)
    def test_agrees_with_plain_distance(self, left, right, bound):
        true = distance(left, right)
        banded = distance(left, right, upper_bound=bound)
        assert (banded == true) if true <= bound else (banded > bound)
