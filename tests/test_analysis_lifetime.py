"""Tests for the address-lifetime analysis."""

import pytest

from repro.analysis import lifetime
from repro.core.collector import CollectedDataset
from repro.net.clock import DAY


def _dataset(spans_days):
    """Build a dataset with one address per requested span (days)."""
    dataset = CollectedDataset()
    for index, span in enumerate(spans_days):
        address = 0x20010DB8 << 96 | index
        dataset.record(address, 0.0, "X")
        if span > 0:
            dataset.record(address, span * DAY, "X")
    return dataset


class TestLifetimeReport:
    def test_spans_computed(self):
        report = lifetime.analyze(_dataset([0, 0, 2, 10]))
        assert report.total_addresses == 4
        assert report.single_sighting == 2
        assert report.single_sighting_share == 0.5
        assert report.median_span_days == 1.0  # median of 0,0,2,10
        assert report.max_span == 10 * DAY

    def test_long_lived_share(self):
        report = lifetime.analyze(_dataset([0, 3, 8, 20]), long_days=7.0)
        assert report.long_lived_share == pytest.approx(0.5)

    def test_empty(self):
        report = lifetime.analyze(CollectedDataset())
        assert report.total_addresses == 0
        assert report.single_sighting_share == 0.0


class TestSurvivalCurve:
    def test_monotone_decreasing(self):
        dataset = _dataset([0, 1, 2, 5, 10, 30])
        curve = lifetime.survival_curve(dataset)
        values = [curve[day] for day in sorted(curve)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_known_values(self):
        curve = lifetime.survival_curve(_dataset([0, 2, 10]),
                                        day_points=(1, 7))
        assert curve[1] == pytest.approx(2 / 3)
        assert curve[7] == pytest.approx(1 / 3)

    def test_empty(self):
        assert lifetime.survival_curve(CollectedDataset()) == \
            {1: 0.0, 3: 0.0, 7: 0.0, 14: 0.0, 21: 0.0}


class TestTurnover:
    def test_static_population_zero(self):
        dataset = CollectedDataset()
        for index in range(10):
            dataset.record(index, 100.0, "X")  # all on day 0
        assert lifetime.turnover_rate(dataset) == 0.0

    def test_fully_fresh_population(self):
        dataset = CollectedDataset()
        counter = 0
        for day in range(4):
            for _ in range(5):
                dataset.record(counter, day * DAY + 1, "X")
                counter += 1
        rate = lifetime.turnover_rate(dataset)
        assert rate == pytest.approx(5 / 20)


class TestOnExperiment:
    def test_ntp_population_is_ephemeral(self, experiment):
        """Most collected addresses are short-lived — the reason the
        paper's pipeline scans in real time."""
        report = lifetime.analyze(experiment.ntp_dataset)
        assert report.total_addresses > 0
        assert report.single_sighting_share > 0.4
        curve = lifetime.survival_curve(experiment.ntp_dataset)
        assert curve[14] < curve[1]
        assert lifetime.turnover_rate(experiment.ntp_dataset) > 0.01
