"""Tests for the Appendix-B MAC/vendor analysis."""

import pytest

from repro.analysis import macs
from repro.core.collector import CollectedDataset
from repro.ipv6 import eui64
from repro.ipv6.address import parse, with_iid
from repro.ipv6.oui import LOCAL_OUI, UNLISTED_OUI, default_registry

PREFIX = parse("2001:db8::")
RPI_OUI = 0xB827EB


def _eui64_addr(mac, prefix=PREFIX):
    return with_iid(prefix, eui64.mac_to_iid(mac))


@pytest.fixture(scope="module")
def registry():
    return default_registry()


class TestAnalyzeAddresses:
    def test_counts(self, registry):
        addresses = [
            _eui64_addr((RPI_OUI << 24) | 1),
            _eui64_addr((RPI_OUI << 24) | 1, prefix=parse("2001:db8:1::")),
            _eui64_addr((RPI_OUI << 24) | 2),
            parse("2001:db8::abcd:ef12:3456:9abc"),  # privacy, no MAC
        ]
        report = macs.analyze_addresses(addresses, registry)
        assert report.total_addresses == 4
        assert report.eui64_addresses == 3
        assert report.distinct_unique_macs == 2
        assert report.eui64_share == pytest.approx(0.75)
        row = report.vendor("Raspberry Pi Foundation")
        assert row.mac_count == 2
        assert row.ip_count == 3

    def test_local_macs_filtered(self, registry):
        addresses = [_eui64_addr((LOCAL_OUI << 24) | 1)]
        report = macs.analyze_addresses(addresses, registry)
        assert report.eui64_addresses == 1
        assert report.unique_bit_addresses == 0
        assert report.distinct_unique_macs == 0

    def test_unlisted_bucket(self, registry):
        addresses = [_eui64_addr((UNLISTED_OUI << 24) | 1)]
        report = macs.analyze_addresses(addresses, registry)
        assert report.vendor(macs.UNLISTED).mac_count == 1
        assert report.listed_macs == 0

    def test_ranking_order(self, registry):
        addresses = [_eui64_addr((RPI_OUI << 24) | i) for i in range(5)]
        addresses += [_eui64_addr((0x000E58 << 24) | 1)]  # Sonos
        report = macs.analyze_addresses(addresses, registry)
        assert report.vendor_rows[0].vendor == "Raspberry Pi Foundation"
        assert report.top_vendors(1)[0].mac_count == 5

    def test_empty(self, registry):
        report = macs.analyze_addresses([], registry)
        assert report.eui64_share == 0.0
        assert report.vendor_rows == ()


class TestClassify:
    def test_listed(self, registry):
        assert macs.classify_mac_address(
            _eui64_addr((RPI_OUI << 24) | 1), registry) == "listed"

    def test_unlisted_unique(self, registry):
        assert macs.classify_mac_address(
            _eui64_addr((UNLISTED_OUI << 24) | 1), registry) == \
            "unlisted-unique"

    def test_local(self, registry):
        assert macs.classify_mac_address(
            _eui64_addr((LOCAL_OUI << 24) | 1), registry) == "local"

    def test_non_eui64_none(self, registry):
        assert macs.classify_mac_address(parse("2001:db8::1"), registry) \
            is None


class TestServerDistribution:
    def test_figure4_shares(self, registry):
        dataset = CollectedDataset()
        listed = _eui64_addr((RPI_OUI << 24) | 1)
        local = _eui64_addr((LOCAL_OUI << 24) | 1, prefix=parse("2001:db8:2::"))
        dataset.record(listed, 0.0, "Germany")
        dataset.record(local, 0.0, "India")
        shares = macs.server_location_distribution(dataset, registry)
        assert shares["listed"] == {"Germany": 1.0}
        assert shares["local"] == {"India": 1.0}
        assert shares["unlisted-unique"] == {}

    def test_shares_sum_to_one(self, registry):
        dataset = CollectedDataset()
        for index in range(4):
            dataset.record(_eui64_addr((RPI_OUI << 24) | index,
                                       prefix=PREFIX + (index << 64)),
                           0.0, "Germany" if index % 2 else "India")
        shares = macs.server_location_distribution(dataset, registry)
        assert sum(shares["listed"].values()) == pytest.approx(1.0)
