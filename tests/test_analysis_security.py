"""Tests for the security analyses (Figures 2-3, the headline gap)."""

import pytest

from repro.analysis import security
from repro.scan.result import BrokerGrab, ScanResults, SshGrab


def _ssh(address, comment, key=b"k", software="OpenSSH_9.2p1", ok=True):
    return SshGrab(address=address, time=0, ok=ok,
                   banner=f"SSH-2.0-{software} {comment}",
                   software=software, comment=comment,
                   key_algorithm="ssh-ed25519",
                   key_fingerprint=key)


def _broker(address, protocol, open_access, port=1883):
    return BrokerGrab(address=address, time=0, port=port, protocol=protocol,
                      ok=True, open_access=open_access)


class TestSshOutdatedness:
    def test_latest_not_outdated(self):
        results = ScanResults()
        results.add(_ssh(1, "Debian-2+deb12u3", key=b"a"))
        report = security.ssh_outdatedness("x", results)
        assert report.assessed == 1
        assert report.outdated == 0

    def test_old_patch_outdated(self):
        results = ScanResults()
        results.add(_ssh(1, "Debian-2+deb12u1", key=b"a"))
        report = security.ssh_outdatedness("x", results)
        assert report.outdated == 1
        assert report.outdated_share == 1.0

    def test_freebsd_unassessable(self):
        results = ScanResults()
        results.add(_ssh(1, "FreeBSD-20240318", key=b"a",
                         software="OpenSSH_9.6"))
        report = security.ssh_outdatedness("x", results)
        assert report.assessed == 0
        assert report.unassessable == 1

    def test_dedup_by_key(self):
        results = ScanResults()
        results.add(_ssh(1, "Debian-2+deb12u1", key=b"shared"))
        results.add(_ssh(2, "Debian-2+deb12u1", key=b"shared"))
        report = security.ssh_outdatedness("x", results, by_key=True)
        assert report.assessed == 1

    def test_by_address_counts_reuse(self):
        """Figure 5's view: key reuse inflates per-address counts."""
        results = ScanResults()
        results.add(_ssh(1, "Debian-2+deb12u1", key=b"shared"))
        results.add(_ssh(2, "Debian-2+deb12u1", key=b"shared"))
        report = security.ssh_outdatedness("x", results, by_key=False)
        assert report.assessed == 2
        assert report.outdated == 2

    def test_failed_grabs_ignored(self):
        results = ScanResults()
        results.add(SshGrab(address=1, time=0, ok=False))
        report = security.ssh_outdatedness("x", results)
        assert report.assessed == 0

    def test_unknown_release_unassessable(self):
        results = ScanResults()
        results.add(_ssh(1, "Debian-99", key=b"a", software="OpenSSH_1.0p1"))
        report = security.ssh_outdatedness("x", results)
        assert report.unassessable == 1


class TestBrokerAccessControl:
    def test_open_vs_controlled(self):
        results = ScanResults()
        results.add(_broker(1, "mqtt", True))
        results.add(_broker(2, "mqtt", False))
        results.add(_broker(3, "mqtt", False))
        report = security.broker_access_control("x", results, "mqtt")
        assert report.total == 3
        assert report.access_control_share == pytest.approx(2 / 3)
        assert report.open_share == pytest.approx(1 / 3)

    def test_tls_variant_merged(self):
        results = ScanResults()
        results.add(_broker(1, "mqtt", True))
        results.add(_broker(2, "mqtts", False, port=8883))
        report = security.broker_access_control("x", results, "mqtt")
        assert report.total == 2

    def test_tls_variant_excluded_on_request(self):
        results = ScanResults()
        results.add(_broker(1, "mqtt", True))
        results.add(_broker(2, "mqtts", False, port=8883))
        report = security.broker_access_control("x", results, "mqtt",
                                                include_tls_variant=False)
        assert report.total == 1

    def test_dedup_by_address(self):
        results = ScanResults()
        results.add(_broker(1, "mqtt", True))
        results.add(_broker(1, "mqtt", True))
        report = security.broker_access_control("x", results, "mqtt")
        assert report.total == 1

    def test_network_grouping(self):
        """Figure 6's view: group by /64 instead of address."""
        results = ScanResults()
        results.add(_broker(0x20010DB8_0000_0000_0000_0000_0000_0001, "mqtt", True))
        results.add(_broker(0x20010DB8_0000_0000_0000_0000_0000_0002, "mqtt", True))
        report = security.broker_access_control("x", results, "mqtt",
                                                by_network=64)
        assert report.total == 1

    def test_unknown_outcomes_separate(self):
        results = ScanResults()
        results.add(_broker(1, "amqp", None, port=5672))
        report = security.broker_access_control("x", results, "amqp")
        assert report.unknown == 1
        assert report.total == 0
        assert report.access_control_share == 0.0


class TestSecureShare:
    def test_combination(self):
        results = ScanResults()
        results.add(_ssh(1, "Debian-2+deb12u3", key=b"a"))   # secure
        results.add(_ssh(2, "Debian-2+deb12u1", key=b"b"))   # outdated
        results.add(_broker(3, "mqtt", False))               # secure
        results.add(_broker(4, "mqtt", True))                # open
        report = security.secure_share("x", results)
        assert report.total == 4
        assert report.secure == 2
        assert report.secure_share == 0.5

    def test_empty(self):
        report = security.secure_share("x", ScanResults())
        assert report.secure_share == 0.0

    def test_gap_pair(self):
        ntp, hitlist = security.security_gap(ScanResults(), ScanResults())
        assert ntp.label == "ntp"
        assert hitlist.label == "hitlist"


class TestBugfixRegressions:
    def test_key_slot_only_consumed_by_assessable_grab(self):
        """An unassessable first grab must not burn its host key: the
        seed marked the key seen and dropped the later assessable grab."""
        results = ScanResults()
        results.add(_ssh(1, "FreeBSD-20230316", key=b"a"))   # hides level
        results.add(_ssh(2, "Debian-2+deb12u3", key=b"a"))   # assessable
        report = security.ssh_outdatedness("x", results)
        assert report.assessed == 1
        assert report.outdated == 0
        assert report.unassessable == 0

    def test_unassessable_counted_per_key_not_per_grab(self):
        results = ScanResults()
        results.add(_ssh(1, "FreeBSD-20230316", key=b"a"))
        results.add(_ssh(2, "FreeBSD-20230316", key=b"a"))
        results.add(_ssh(3, "FreeBSD-20230316", key=b"b"))
        report = security.ssh_outdatedness("x", results)
        assert report.assessed == 0
        assert report.unassessable == 2

    def test_by_address_still_counts_per_grab(self):
        results = ScanResults()
        results.add(_ssh(1, "FreeBSD-20230316", key=b"a"))
        results.add(_ssh(2, "FreeBSD-20230316", key=b"a"))
        report = security.ssh_outdatedness("x", results, by_key=False)
        assert report.unassessable == 2

    def test_conclusive_tls_verdict_beats_earlier_unknown(self):
        """The TLS variant merges in after plaintext grabs; a conclusive
        verdict there must not be discarded because the plaintext grab
        already marked the address seen."""
        results = ScanResults()
        results.add(_broker(1, "mqtt", None, port=1883))
        results.add(_broker(1, "mqtts", False, port=8883))
        report = security.broker_access_control("x", results, "mqtt")
        assert report.controlled == 1
        assert report.unknown == 0

    def test_conclusive_verdict_not_overwritten_by_unknown(self):
        results = ScanResults()
        results.add(_broker(1, "mqtt", True, port=1883))
        results.add(_broker(1, "mqtts", None, port=8883))
        report = security.broker_access_control("x", results, "mqtt")
        assert report.open_count == 1
        assert report.unknown == 0

    def test_first_conclusive_verdict_wins(self):
        """Two conclusive grabs for one address: first one stands."""
        results = ScanResults()
        results.add(_broker(1, "amqp", False, port=5672))
        results.add(_broker(1, "amqps", True, port=5671))
        report = security.broker_access_control("x", results, "amqp")
        assert report.controlled == 1
        assert report.open_count == 0
