"""Tests for the Figure 1 structure analysis."""

import pytest

from repro.analysis import structure
from repro.ipv6 import eui64
from repro.ipv6.address import with_iid
from repro.world.asdb import EYEBALL, AsDatabase, AutonomousSystem


@pytest.fixture()
def asdb():
    db = AsDatabase()
    db.register(AutonomousSystem(1, "Eyeball", EYEBALL, "DE"))
    db.register(AutonomousSystem(2, "Hosting", "Content", "US"))
    return db


class TestAnalyze:
    def test_structured_servers(self, asdb):
        block = asdb.blocks_of(2)[0]
        addresses = [block + index for index in range(1, 11)]
        report = structure.analyze("servers", addresses, asdb)
        assert report.total == 10
        assert report.structured_share == 1.0
        assert report.eyeball_as_share == 0.0

    def test_eyeball_clients(self, asdb):
        block = asdb.blocks_of(1)[0]
        addresses = [with_iid(block, 0x8D4F19C277ABE000 + i)
                     for i in range(5)]
        report = structure.analyze("clients", addresses, asdb)
        assert report.high_entropy_share == 1.0
        assert report.eyeball_as_share == 1.0

    def test_eui64_share(self, asdb):
        block = asdb.blocks_of(1)[0]
        addresses = [with_iid(block, eui64.mac_to_iid(0xB827EB000000 + i))
                     for i in range(4)]
        report = structure.analyze("pis", addresses, asdb)
        assert report.eui64_share == 1.0

    def test_empty_dataset(self, asdb):
        report = structure.analyze("empty", [], asdb)
        assert report.total == 0
        assert report.structured_share == 0.0


class TestCompare:
    def test_nested_dict(self, asdb):
        block = asdb.blocks_of(1)[0]
        reports = [
            structure.analyze("a", [block + 1], asdb),
            structure.analyze("b", [block + 0x10000], asdb),
        ]
        table = structure.compare(reports)
        assert set(table) == {"a", "b"}
        assert "cable-dsl-isp" in table["a"]
        assert table["a"]["low-byte"] == 1.0
