"""Tests for the repro.api facade and RunReport round trips."""

import json

import pytest

from repro import api
from repro.cli import main
from repro.core.campaign import CampaignConfig
from repro.core.pipeline import ExperimentConfig, run_experiment
from repro.io import load_run_report, save_run_report
from repro.obs import RUN_REPORT_VERSION, RunReport
from repro.world.population import WorldConfig

SCALE, SEED = 0.05, 20240720


def _study_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        world=WorldConfig(seed=SEED, scale=SCALE),
        campaign=CampaignConfig(wire_fraction=0.0),
        include_rl=False,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestConfigValidation:
    """The bugfix: validation lives on the config, not the CLI handler."""

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="scan_shards"):
            ExperimentConfig(scan_shards=0)

    def test_rejects_unknown_protocols(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            ExperimentConfig(protocols=("ssh", "gopher"))

    def test_rejects_empty_protocol_tuple(self):
        with pytest.raises(ValueError, match="at least one"):
            ExperimentConfig(protocols=())

    def test_accepts_valid_values(self):
        config = ExperimentConfig(scan_shards=4, protocols=("ssh", "coap"))
        assert config.scan_shards == 4

    def test_cli_surfaces_config_errors(self, capsys):
        assert main(["study", "--scale", "0.05", "--shards", "0"]) == 2
        assert "scan_shards" in capsys.readouterr().err
        assert main(["study", "--scale", "0.05",
                     "--protocols", "ssh,nosuch"]) == 2
        assert "unknown protocol" in capsys.readouterr().err

    def test_telescope_config_validation(self):
        with pytest.raises(ValueError, match="sweep_days"):
            api.TelescopeConfig(sweep_days=0)


class TestApiCliRoundTrip:
    """api result == CLI JSON, per subcommand."""

    def _cli_doc(self, capsys, argv):
        assert main(argv) == 0
        return json.loads(capsys.readouterr().out)

    def test_world(self, capsys):
        result = api.build_world(WorldConfig(seed=SEED, scale=SCALE))
        doc = self._cli_doc(capsys, ["world", "--scale", str(SCALE),
                                     "--seed", str(SEED),
                                     "--format", "json"])
        assert doc == result.report.as_document()

    def test_collect(self, capsys):
        result = api.collect(api.CollectConfig(
            world=WorldConfig(seed=SEED, scale=SCALE),
            campaign=CampaignConfig(days=2, wire_fraction=0.0)))
        doc = self._cli_doc(capsys, ["collect", "--scale", str(SCALE),
                                     "--seed", str(SEED), "--days", "2",
                                     "--wire", "0", "--format", "json"])
        assert doc == result.report.as_document()

    def test_study(self, capsys):
        result = api.study(_study_config())
        doc = self._cli_doc(capsys, ["study", "--scale", str(SCALE),
                                     "--seed", str(SEED), "--no-rl",
                                     "--wire", "0", "--format", "json"])
        assert doc == result.report.as_document()

    def test_telescope(self, capsys):
        result = api.telescope(api.TelescopeConfig(
            world=WorldConfig(seed=SEED, scale=SCALE), sweep_days=2))
        doc = self._cli_doc(capsys, ["telescope", "--scale", str(SCALE),
                                     "--seed", str(SEED), "--days", "2",
                                     "--format", "json"])
        assert doc == result.report.as_document()


class TestMetricsDeterminism:
    def test_same_seed_identical_run_report(self):
        first = api.study(_study_config())
        second = api.study(_study_config())
        assert first.report.as_document() == second.report.as_document()

    def test_run_experiment_snapshots_identical(self):
        first = run_experiment(_study_config())
        second = run_experiment(_study_config())
        assert first.metrics is not second.metrics
        assert first.metrics.snapshot() == second.metrics.snapshot()

    def test_diff_metrics_flags_moved_series(self):
        base = api.study(_study_config()).report
        sharded = api.study(_study_config(scan_shards=2)).report
        assert base.diff_metrics(base) == {}
        deltas = sharded.diff_metrics(base)
        # Sharding relabels engine series, so per-shard counters appear.
        assert any("shard" in series for series in deltas)


class TestRunReportPersistence:
    def test_save_load_round_trip(self, tmp_path):
        report = api.study(_study_config()).report
        path = tmp_path / "report.jsonl"
        save_run_report(report, path)
        loaded = load_run_report(path)
        assert loaded.as_document() == report.as_document()

    def test_version_checked(self):
        with pytest.raises(ValueError, match="version"):
            RunReport.from_document({"command": "x", "version": 99})

    def test_version_constant_stamped(self):
        report = api.build_world(WorldConfig(seed=1, scale=0.02)).report
        assert report.version == RUN_REPORT_VERSION


class TestApiResults:
    def test_study_result_carries_experiment(self):
        result = api.study(_study_config())
        assert len(result.experiment.ntp_dataset) > 0
        assert result.report.command == "study"
        assert result.report.tables["table2"]

    def test_study_metrics_nonzero(self):
        """Stage, scheduler and per-protocol probe series are populated."""
        metrics = api.study(_study_config()).report.metrics
        values = {(e["name"], tuple(sorted(e["labels"].items()))): e["value"]
                  for e in metrics["counters"]}
        assert values[("stage_received_total",
                       (("stage", "realtime-scan"),))] > 0
        assert values[("scheduler_admitted_total", (("engine", "ntp"),))] > 0
        assert values[("probe_attempts_total",
                       (("engine", "ntp"), ("protocol", "ssh")))] > 0

    def test_analyze_round_trip(self, tmp_path, capsys):
        from repro.io import save_results

        experiment = api.study(_study_config()).experiment
        ntp = tmp_path / "ntp.jsonl"
        hitlist = tmp_path / "hitlist.jsonl"
        save_results(experiment.ntp_scan, ntp)
        save_results(experiment.hitlist_scan, hitlist)
        result = api.analyze(api.AnalyzeConfig(ntp_path=str(ntp),
                                               hitlist_path=str(hitlist)))
        assert main(["analyze", "--ntp", str(ntp), "--hitlist",
                     str(hitlist), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc == result.report.as_document()
        assert result.report.tables["security"]["ntp"]["total"] > 0
