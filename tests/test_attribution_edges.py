"""Telescope attribution edge cases: when NOT to say "NTP-sourced".

The bait signal is the strongest attribution evidence the telescope
has, so the classifier must be conservative about it.  This pack pins
the three ways a cluster can *look* NTP-adjacent without being so:

* **scatter-only** clusters (no bait hit at all) must never be
  attributed to an NTP actor, whatever their geometry;
* **single-probe** clusters are below the evidence floor and must
  report ``insufficient`` rather than any confident label;
* **guard-band wander** — a sweep of the bait /48 that stumbles onto
  a revealed bait in passing — must stay non-NTP because bait hits
  are a minority of its traffic.

Each property is exercised twice: synthetically against the classifier
(Hypothesis, exhaustive over ratios) and end-to-end through a simulated
telescope capture.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attribution import (
    INSUFFICIENT,
    MIN_CLUSTER_EVENTS,
    NTP_BAIT_RATIO,
    FeatureAccumulator,
    attribute_events,
    classify_features,
    derive_features,
)
from repro.core.telescope import BaitRecord, InboundEvent, Telescope
from repro.ipv6 import address as addrmod
from repro.net.simnet import Network
from repro.ntp.server import NtpServer

PREFIX48 = addrmod.parse("2001:6d0:babe::")
SERVER = addrmod.parse("2001:500::77")
SCANNER = addrmod.parse("2001:db8:bad::1")


def cluster_events(total, bait_hits, *, src=SCANNER, spread_subnets=True):
    """One cluster's synthetic stream with an exact bait-hit count."""
    events = []
    for index in range(total):
        subnet = (0x9000 + index) if spread_subnets else 0x9000
        dst = PREFIX48 + (subnet << 64) + 0x42
        bait = None
        if index < bait_hits:
            bait = BaitRecord(address=dst, server=SERVER,
                              query_time=0.0, answered=True)
        events.append(InboundEvent(
            time=10.0 + 7.0 * index, src=src, dst=dst,
            dst_port=443, transport="tcp", bait=bait))
    return events


def classify(events):
    accumulator = FeatureAccumulator()
    for event in events:
        accumulator.add(event)
    return classify_features(derive_features(accumulator))


class TestClassifierGuards:
    @given(total=st.integers(MIN_CLUSTER_EVENTS, 40),
           spread=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_scatter_only_is_never_ntp(self, total, spread):
        strategy, _ = classify(
            cluster_events(total, 0, spread_subnets=spread))
        assert strategy != "ntp"

    @given(bait=st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_single_probe_is_insufficient(self, bait):
        strategy, reasons = classify(cluster_events(1, int(bait)))
        assert strategy == INSUFFICIENT
        assert any("evidence floor" in reason for reason in reasons)

    def test_empty_cluster_is_insufficient(self):
        strategy, _ = classify([])
        assert strategy == INSUFFICIENT

    @given(total=st.integers(3, 40), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_bait_minority_is_never_ntp(self, total, data):
        minority = data.draw(st.integers(
            0, (total - 1) // 2), label="bait_hits")
        assert minority / total < NTP_BAIT_RATIO
        strategy, _ = classify(cluster_events(total, minority))
        assert strategy != "ntp"

    @given(total=st.integers(MIN_CLUSTER_EVENTS, 40), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_bait_majority_is_ntp(self, total, data):
        majority = data.draw(st.integers(
            (total + 1) // 2, total), label="bait_hits")
        strategy, reasons = classify(cluster_events(total, majority))
        assert strategy == "ntp"
        assert any("bait" in reason for reason in reasons)


# -- end-to-end through a simulated telescope -------------------------------


def captured(drive):
    """Run ``drive(network, telescope)`` and return the capture."""
    network = Network()
    NtpServer(network, SERVER, location="XX")
    telescope = Telescope(network, prefix48=PREFIX48)
    drive(network, telescope)
    return telescope


def wander(network, *, count, start_subnet=0x9000, port=443):
    """Sweep ``count`` guard-band addresses (never-queried /64s)."""
    for index in range(count):
        network.clock.advance(30.0)
        network.tcp_connect(
            SCANNER, PREFIX48 + ((start_subnet + index) << 64) + 1, port)


class TestTelescopeEdgeCases:
    def test_scatter_only_cluster_classifies_non_ntp(self):
        telescope = captured(
            lambda network, _: wander(network, count=12))
        assert telescope.matched_events() == []
        report, _ = attribute_events(telescope.events)
        (attribution,) = report.attributions
        assert attribution.strategy != "ntp"
        assert attribution.features.bait_hits == 0

    def test_single_probe_cluster_reports_insufficient(self):
        telescope = captured(
            lambda network, _: wander(network, count=1))
        report, _ = attribute_events(telescope.events)
        (attribution,) = report.attributions
        assert attribution.strategy == INSUFFICIENT
        assert any("evidence floor" in reason
                   for reason in attribution.reasons)

    def test_guard_band_wander_with_stray_bait_hit_stays_non_ntp(self):
        def drive(network, telescope):
            record = telescope.query(SERVER)
            wander(network, count=11)
            network.clock.advance(30.0)
            network.tcp_connect(SCANNER, record.address, 443)

        telescope = captured(drive)
        assert len(telescope.matched_events()) == 1
        report, _ = attribute_events(telescope.events)
        (attribution,) = report.attributions
        assert attribution.features.bait_hits == 1
        assert attribution.features.bait_hit_ratio \
            == pytest.approx(1.0 / 12.0)
        assert attribution.strategy != "ntp"

    def test_bait_focused_scanner_still_attributes_ntp(self):
        def drive(network, telescope):
            records = [telescope.query(SERVER) for _ in range(4)]
            for record in records:
                network.clock.advance(30.0)
                network.tcp_connect(SCANNER, record.address, 443)

        telescope = captured(drive)
        report, _ = attribute_events(telescope.events)
        (attribution,) = report.attributions
        assert attribution.strategy == "ntp"
        assert attribution.features.bait_hit_ratio == 1.0
