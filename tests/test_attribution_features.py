"""Feature-extraction algebra: the properties parallel extraction needs.

Mirrors the ``ScanResults.merged`` property suite: the per-cluster
:class:`FeatureAccumulator` must fold **order-insensitively** (any
permutation of the event stream produces equal state) and merge
**associatively and commutatively** (any shard tree produces equal
state), because the pooled extraction path chunks the stream at fixed
boundaries and folds partial results back in chunk order.  On top of
the algebra, the suite pins byte-parity of the full attribution table
across worker counts on one synthetic stream.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.core.attribution import (
    ATTRIBUTION_CHUNK,
    FeatureAccumulator,
    attribute_events,
    cluster_accumulators,
    cluster_key,
    derive_features,
)
from repro.core.telescope import BaitRecord, InboundEvent
from tests.parity import WORKER_COUNTS


def make_event(time, src, dst, port, *, bait=False):
    record = None
    if bait:
        record = BaitRecord(address=dst, server=0x99, query_time=0.0,
                            answered=True)
    return InboundEvent(time=time, src=src, dst=dst, dst_port=port,
                        transport="tcp", bait=record)


events_strategy = st.lists(
    st.builds(
        make_event,
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                  allow_infinity=False),
        st.integers(min_value=1 << 64, max_value=(1 << 128) - 1),
        st.integers(min_value=1 << 64, max_value=(1 << 128) - 1),
        st.integers(min_value=1, max_value=65535),
        bait=st.booleans(),
    ),
    min_size=0, max_size=60)


def fold(events):
    accumulator = FeatureAccumulator()
    for event in events:
        accumulator.add(event)
    return accumulator


class TestAccumulatorAlgebra:
    @given(events=events_strategy, seed=st.integers(0, 2 ** 16))
    @settings(max_examples=50, deadline=None)
    def test_order_insensitive(self, events, seed):
        shuffled = list(events)
        random.Random(seed).shuffle(shuffled)
        assert fold(shuffled) == fold(events)

    @given(events=events_strategy, cut_a=st.integers(0, 60),
           cut_b=st.integers(0, 60))
    @settings(max_examples=50, deadline=None)
    def test_merge_associative(self, events, cut_a, cut_b):
        cut_a, cut_b = sorted((min(cut_a, len(events)),
                               min(cut_b, len(events))))
        a, b, c = (fold(events[:cut_a]), fold(events[cut_a:cut_b]),
                   fold(events[cut_b:]))
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left == right
        assert left == fold(events)

    @given(events=events_strategy, cut=st.integers(0, 60))
    @settings(max_examples=50, deadline=None)
    def test_merge_commutative(self, events, cut):
        cut = min(cut, len(events))
        a, b = fold(events[:cut]), fold(events[cut:])
        assert a.merge(b) == b.merge(a)

    @given(events=events_strategy)
    @settings(max_examples=50, deadline=None)
    def test_merge_is_pure(self, events):
        a, b = fold(events), fold(events)
        before = fold(events)
        a.merge(b)
        assert a == before and b == before

    @given(events=events_strategy, seed=st.integers(0, 2 ** 16))
    @settings(max_examples=50, deadline=None)
    def test_derived_features_order_insensitive(self, events, seed):
        shuffled = list(events)
        random.Random(seed).shuffle(shuffled)
        assert derive_features(fold(shuffled)) \
            == derive_features(fold(events))

    @given(events=events_strategy, chunk=st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_chunked_extraction_equals_single_fold(self, events, chunk):
        chunked, timing = cluster_accumulators(events, chunk_size=chunk)
        whole, _ = cluster_accumulators(events,
                                        chunk_size=ATTRIBUTION_CHUNK)
        assert timing is None
        assert chunked == whole
        for key, accumulator in whole.items():
            assert accumulator == fold(
                [e for e in events if cluster_key(e.src) == key])


def synthetic_stream():
    """A deterministic multi-cluster stream big enough to chunk."""
    rng = random.Random(20240720)
    events = []
    for cluster in range(5):
        src_base = (0x2001_0db8_0000 + cluster) << 80
        for index in range(60):
            events.append(make_event(
                time=rng.uniform(0, 5000.0),
                src=src_base + rng.randrange(1, 50),
                dst=(0x2001_06d0_babe << 80) + (index << 64) + cluster,
                port=rng.choice((22, 80, 443, 8443)),
                bait=cluster == 0))
    return events


class TestWorkerParity:
    def test_attribution_table_parity_0_2_4_workers(self):
        events = synthetic_stream()
        truth = {event.src: "hitlist" for event in events}
        reference, timing = attribute_events(events, truth=truth,
                                             chunk_size=32)
        assert timing is None
        for workers in WORKER_COUNTS:
            with api.ExecutionContext(workers=workers) as ctx:
                candidate, timing = attribute_events(
                    events, truth=truth, pool=ctx.pool, chunk_size=32)
            assert timing is not None and timing["workers"] >= 1
            assert candidate.tables() == reference.tables(), \
                f"workers={workers}"

    def test_single_chunk_skips_the_pool(self):
        events = synthetic_stream()[:10]
        with api.ExecutionContext(workers=2) as ctx:
            _, timing = attribute_events(events, pool=ctx.pool,
                                         chunk_size=ATTRIBUTION_CHUNK)
        assert timing is None  # one chunk: inline, no pool round-trip
