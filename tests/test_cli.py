"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import RUN_REPORT_VERSION


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["world"])
        assert args.scale == 0.2
        assert args.seed == 20240720

    def test_study_flags(self):
        args = build_parser().parse_args(
            ["study", "--scale", "0.1", "--no-rl"])
        assert args.scale == 0.1
        assert args.no_rl is True


class TestCommands:
    def test_world(self, capsys):
        assert main(["world", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "World composition" in out
        assert "fritzbox" in out
        assert "premises:" in out

    def test_collect(self, capsys):
        assert main(["collect", "--scale", "0.05", "--days", "2",
                     "--wire", "0"]) == 0
        out = capsys.readouterr().out
        assert "Collected" in out
        assert "India" in out

    def test_telescope(self, capsys):
        assert main(["telescope", "--scale", "0.05", "--days", "2"]) == 0
        out = capsys.readouterr().out
        assert "Actors detected" in out
        assert "covert" in out
        assert "research" in out

    def test_study(self, capsys):
        assert main(["study", "--scale", "0.05", "--no-rl",
                     "--wire", "0"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "secure share" in out
        assert "hit rates" in out

    def test_determinism(self, capsys):
        main(["world", "--scale", "0.05", "--seed", "7"])
        first = capsys.readouterr().out
        main(["world", "--scale", "0.05", "--seed", "7"])
        second = capsys.readouterr().out
        assert first == second


class TestJsonFormat:
    """--format json golden schema: every subcommand emits one stable
    RunReport document."""

    SCHEMA_KEYS = {"command", "version", "config", "metrics", "tables"}

    def _run_json(self, capsys, argv):
        assert main(argv) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == self.SCHEMA_KEYS
        assert doc["version"] == RUN_REPORT_VERSION
        assert set(doc["metrics"]) == {"counters", "gauges", "histograms"}
        return doc

    def test_world_json(self, capsys):
        doc = self._run_json(capsys, ["world", "--scale", "0.05",
                                      "--format", "json"])
        assert doc["command"] == "world"
        assert doc["config"]["scale"] == 0.05
        assert doc["tables"]["summary"]["premises"] > 0
        types = {row["type"] for row in doc["tables"]["composition"]}
        assert "fritzbox" in types

    def test_collect_json(self, capsys):
        doc = self._run_json(capsys, ["collect", "--scale", "0.05",
                                      "--days", "2", "--wire", "0",
                                      "--format", "json"])
        assert doc["command"] == "collect"
        assert doc["tables"]["totals"]["addresses"] > 0
        counters = {c["name"] for c in doc["metrics"]["counters"]}
        assert "campaign_days_total" in counters
        assert "bus_events_total" in counters

    def test_study_json_has_runtime_metrics(self, capsys):
        doc = self._run_json(capsys, ["study", "--scale", "0.05",
                                      "--no-rl", "--wire", "0",
                                      "--format", "json"])
        assert doc["command"] == "study"
        nonzero = {c["name"] for c in doc["metrics"]["counters"]
                   if c["value"] > 0}
        # The acceptance bar: stage, scheduler and per-protocol probe
        # series must all be populated.
        assert "stage_received_total" in nonzero
        assert "scheduler_admitted_total" in nonzero
        assert "probe_attempts_total" in nonzero
        assert "probe_success_total" in nonzero
        protocols = {c["labels"]["protocol"]
                     for c in doc["metrics"]["counters"]
                     if c["name"] == "probe_attempts_total"}
        assert {"http", "https", "ssh", "coap"} <= protocols
        assert doc["tables"]["table2"]

    def test_study_json_sharded_labels(self, capsys):
        doc = self._run_json(capsys, ["study", "--scale", "0.05",
                                      "--no-rl", "--wire", "0",
                                      "--shards", "2", "--format", "json"])
        engines = {c["labels"]["engine"]
                   for c in doc["metrics"]["counters"]
                   if c["name"] == "scheduler_admitted_total"}
        assert {"ntp/shard0", "ntp/shard1",
                "hitlist/shard0", "hitlist/shard1"} <= engines

    def test_telescope_json(self, capsys):
        doc = self._run_json(capsys, ["telescope", "--scale", "0.05",
                                      "--days", "2", "--format", "json"])
        assert doc["command"] == "telescope"
        assert doc["tables"]["telescope"]["baits"] > 0
        assert isinstance(doc["tables"]["actors"], list)

    def test_json_deterministic(self, capsys):
        argv = ["world", "--scale", "0.05", "--seed", "7",
                "--format", "json"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        assert first == capsys.readouterr().out


class TestSaveLoad:
    def test_collect_out(self, capsys, tmp_path):
        out = tmp_path / "dataset.jsonl"
        assert main(["collect", "--scale", "0.05", "--days", "1",
                     "--wire", "0", "--out", str(out)]) == 0
        assert out.exists()
        from repro.io import load_dataset
        assert len(load_dataset(out)) > 0

    def test_study_out_dir_then_analyze(self, capsys, tmp_path):
        out = tmp_path / "artefacts"
        assert main(["study", "--scale", "0.05", "--no-rl", "--wire", "0",
                     "--out-dir", str(out)]) == 0
        capsys.readouterr()
        assert main(["analyze", "--ntp", str(out / "ntp_scan.jsonl"),
                     "--hitlist", str(out / "hitlist_scan.jsonl")]) == 0
        text = capsys.readouterr().out
        assert "Device types (from saved results)" in text
        assert "secure share" in text

    def test_study_out_dir_writes_run_report(self, capsys, tmp_path):
        out = tmp_path / "artefacts"
        assert main(["study", "--scale", "0.05", "--no-rl", "--wire", "0",
                     "--out-dir", str(out)]) == 0
        from repro.io import load_run_report

        report = load_run_report(out / "run_report.jsonl")
        assert report.command == "study"
        assert report.tables["table1"]
