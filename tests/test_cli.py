"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["world"])
        assert args.scale == 0.2
        assert args.seed == 20240720

    def test_study_flags(self):
        args = build_parser().parse_args(
            ["study", "--scale", "0.1", "--no-rl"])
        assert args.scale == 0.1
        assert args.no_rl is True


class TestCommands:
    def test_world(self, capsys):
        assert main(["world", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "World composition" in out
        assert "fritzbox" in out
        assert "premises:" in out

    def test_collect(self, capsys):
        assert main(["collect", "--scale", "0.05", "--days", "2",
                     "--wire", "0"]) == 0
        out = capsys.readouterr().out
        assert "Collected" in out
        assert "India" in out

    def test_telescope(self, capsys):
        assert main(["telescope", "--scale", "0.05", "--days", "2"]) == 0
        out = capsys.readouterr().out
        assert "Actors detected" in out
        assert "covert" in out
        assert "research" in out

    def test_study(self, capsys):
        assert main(["study", "--scale", "0.05", "--no-rl",
                     "--wire", "0"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "secure share" in out
        assert "hit rates" in out

    def test_determinism(self, capsys):
        main(["world", "--scale", "0.05", "--seed", "7"])
        first = capsys.readouterr().out
        main(["world", "--scale", "0.05", "--seed", "7"])
        second = capsys.readouterr().out
        assert first == second


class TestSaveLoad:
    def test_collect_out(self, capsys, tmp_path):
        out = tmp_path / "dataset.jsonl"
        assert main(["collect", "--scale", "0.05", "--days", "1",
                     "--wire", "0", "--out", str(out)]) == 0
        assert out.exists()
        from repro.io import load_dataset
        assert len(load_dataset(out)) > 0

    def test_study_out_dir_then_analyze(self, capsys, tmp_path):
        out = tmp_path / "artefacts"
        assert main(["study", "--scale", "0.05", "--no-rl", "--wire", "0",
                     "--out-dir", str(out)]) == 0
        capsys.readouterr()
        assert main(["analyze", "--ntp", str(out / "ntp_scan.jsonl"),
                     "--hitlist", str(out / "hitlist_scan.jsonl")]) == 0
        text = capsys.readouterr().out
        assert "Device types (from saved results)" in text
        assert "secure share" in text
