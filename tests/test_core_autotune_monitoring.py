"""Tests for netspeed auto-tuning and in-campaign pool monitoring."""

import pytest

from repro.core.campaign import CampaignConfig, CollectionCampaign


class TestAutotune:
    def test_weight_rises_until_target(self, fresh_world):
        campaign = CollectionCampaign(
            fresh_world, CampaignConfig(days=10, netspeed=200,
                                        wire_fraction=0.0, seed=5))
        log = campaign.autotune_netspeed(10_000_000, max_days=3)
        assert len(log) == 3  # target unreachable -> tuned every round
        assert log[-1]["netspeed"] > log[0]["netspeed"]
        weights = {campaign.pool.server(a).netspeed
                   for a in campaign.capture_servers}
        assert weights == {200 * 2 ** 3}

    def test_stops_when_target_met(self, fresh_world):
        campaign = CollectionCampaign(
            fresh_world, CampaignConfig(days=10, netspeed=4000,
                                        wire_fraction=0.0, seed=5))
        log = campaign.autotune_netspeed(1, max_days=5)
        assert len(log) == 1  # first observed day already suffices
        assert log[0]["observed_requests"] >= 1

    def test_higher_weight_collects_more(self, fresh_world):
        """The tuning knob actually moves collection volume."""
        from repro.world.population import build_world
        from tests.conftest import small_world_config

        low_world = fresh_world
        low = CollectionCampaign(
            low_world, CampaignConfig(days=3, netspeed=300,
                                      wire_fraction=0.0, seed=9))
        low.run()
        high_world = build_world(small_world_config())
        high = CollectionCampaign(
            high_world, CampaignConfig(days=3, netspeed=30_000,
                                       wire_fraction=0.0, seed=9))
        high.run()
        assert high.dataset.total_requests > low.dataset.total_requests

    def test_ceiling_respected(self, fresh_world):
        campaign = CollectionCampaign(
            fresh_world, CampaignConfig(days=10, netspeed=900,
                                        wire_fraction=0.0, seed=5))
        campaign.autotune_netspeed(10_000_000, max_days=4, ceiling=2000)
        for address in campaign.capture_servers:
            assert campaign.pool.server(address).netspeed <= 2000

    def test_invalid_target(self, fresh_world):
        campaign = CollectionCampaign(fresh_world, CampaignConfig(days=1))
        with pytest.raises(ValueError):
            campaign.autotune_netspeed(0)


class TestMonitoringDuringCampaign:
    def test_dead_background_servers_shift_traffic_to_us(self, fresh_world):
        """Failure injection: the Indian zone's competitor dies, the
        monitor drops it from rotation, and our capture server absorbs
        the zone's whole demand."""
        campaign = CollectionCampaign(
            fresh_world, CampaignConfig(days=6, wire_fraction=0.0,
                                        monitor_daily=True, seed=4))
        india_bg = [server for server in campaign._background_servers
                    if server.location == "bg-IN"]
        assert india_bg
        campaign.advance_days(2)
        requests_before = next(
            server.stats.requests
            for server in campaign.capture_servers.values()
            if server.location == "India")
        for server in india_bg:
            server.stop()
        campaign.advance_days(4)
        # All India-zone background members are now out of rotation.
        for server in india_bg:
            entry = campaign.pool.server(server.address)
            assert not entry.in_rotation
        requests_after = next(
            server.stats.requests
            for server in campaign.capture_servers.values()
            if server.location == "India")
        per_day_before = requests_before / 2
        per_day_after = (requests_after - requests_before) / 4
        assert per_day_after > per_day_before

    def test_healthy_campaign_unaffected_by_monitoring(self, fresh_world):
        campaign = CollectionCampaign(
            fresh_world, CampaignConfig(days=2, wire_fraction=0.0,
                                        monitor_daily=True, seed=4))
        campaign.run()
        for server in campaign.pool.servers:
            assert server.in_rotation
