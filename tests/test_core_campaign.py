"""Tests for the collection campaign (pool deployment + client traffic)."""

import pytest

from repro.core.campaign import CampaignConfig, CollectionCampaign, rl_2022_config
from repro.net.clock import DAY


@pytest.fixture()
def campaign(fresh_world):
    return CollectionCampaign(
        fresh_world,
        CampaignConfig(days=3, wire_fraction=0.05, seed=1),
    )


class TestDeployment:
    def test_eleven_capture_servers(self, campaign):
        assert len(campaign.capture_servers) == 11

    def test_capture_servers_in_pool(self, campaign):
        operators = {server.operator for server in campaign.pool.servers}
        assert "study" in operators
        assert "background" in operators

    def test_background_competition_matches_geo(self, campaign, fresh_world):
        background = [s for s in campaign.pool.servers
                      if s.operator == "background"]
        expected = sum(c.competing_servers for c in fresh_world.geo.countries)
        assert len(background) == expected

    def test_some_background_members_dead(self, campaign):
        """The pool always carries unresponsive members (paper: the
        telescope saw ~86 % of queries answered)."""
        registered = sum(1 for s in campaign.pool.servers
                         if s.operator == "background")
        alive = len(campaign._background_servers)
        assert 0 < alive < registered

    def test_telescope_response_rate_below_one(self, campaign):
        from repro.core.telescope import Telescope

        telescope = Telescope(campaign.world.network)
        telescope.sweep(campaign.pool)
        rate = telescope.response_rate()
        assert 0.7 < rate < 1.0

    def test_deregister_all(self, campaign):
        campaign.deregister_all()
        for address in campaign.capture_servers:
            assert not campaign.pool.server(address).advertised


class TestCollection:
    def test_collects_addresses(self, campaign):
        report = campaign.run()
        assert len(report.dataset) > 100
        assert report.days_run == 3
        assert report.dataset.total_requests > len(report.dataset)

    def test_clock_advances_by_days(self, campaign, fresh_world):
        start = fresh_world.clock.now()
        campaign.run()
        assert fresh_world.clock.now() == pytest.approx(start + 3 * DAY)

    def test_wire_and_fast_paths_used(self, campaign):
        report = campaign.run()
        assert report.wire_queries > 0
        assert report.fast_queries > 0

    def test_india_dominates_collection(self, campaign):
        """The paper's Table 7 spread must emerge from zone competition."""
        report = campaign.run()
        counts = report.dataset.per_server_counts()
        assert counts["India"] == max(counts.values())
        assert counts["India"] > 5 * counts["the Netherlands"]

    def test_all_capture_locations_collect(self, campaign):
        report = campaign.run()
        assert len(report.dataset.per_server_counts()) == 11

    def test_incremental_equals_oneshot(self, fresh_world):
        from repro.world.population import build_world
        from tests.conftest import small_world_config

        split = CollectionCampaign(fresh_world,
                                   CampaignConfig(days=3, seed=2,
                                                  wire_fraction=0.0))
        split.advance_days(1)
        split.advance_days(2)
        other_world = build_world(small_world_config())
        oneshot = CollectionCampaign(other_world,
                                     CampaignConfig(days=3, seed=2,
                                                    wire_fraction=0.0))
        oneshot.advance_days(3)
        assert split.dataset.addresses == oneshot.dataset.addresses

    def test_new_addresses_keep_arriving(self, campaign):
        """Churn keeps the discovery rate up across the window."""
        report = campaign.run()
        histogram = report.dataset.new_addresses_per_day()
        assert all(histogram.get(day, 0) > 0 for day in range(3))


class TestRlProfile:
    def test_profile_has_27_servers(self):
        assert len(rl_2022_config().deployment) == 27

    def test_rl_campaign_runs(self, fresh_world):
        campaign = CollectionCampaign(fresh_world, rl_2022_config(days=2))
        report = campaign.run()
        assert len(report.dataset) > 50

    def test_two_campaigns_coexist(self, fresh_world):
        """The R&L campaign and ours must not collide on server addresses."""
        first = CollectionCampaign(fresh_world, rl_2022_config(days=1))
        first.run()
        second = CollectionCampaign(fresh_world,
                                    CampaignConfig(days=1, seed=3))
        report = second.run()
        assert len(report.dataset) > 0
