"""Unit tests for the address collector."""


from repro.core.collector import CaptureServer, CollectedDataset
from repro.ipv6 import parse
from repro.ntp.client import NtpClient

SERVER = parse("2001:500::1")
CLIENT_A = parse("2001:db8::a")
CLIENT_B = parse("2001:db8::b")


class TestDataset:
    def test_record_new_and_repeat(self):
        dataset = CollectedDataset()
        assert dataset.record(CLIENT_A, 1.0, "Germany") is True
        assert dataset.record(CLIENT_A, 2.0, "Germany") is False
        assert len(dataset) == 1
        observation = dataset.observations[CLIENT_A]
        assert observation.first_seen == 1.0
        assert observation.last_seen == 2.0
        assert observation.requests == 2

    def test_request_weighting(self):
        dataset = CollectedDataset()
        dataset.record(CLIENT_A, 1.0, "Germany", requests=10)
        assert dataset.total_requests == 10
        assert dataset.observations[CLIENT_A].requests == 10

    def test_per_server_counts(self):
        dataset = CollectedDataset()
        dataset.record(CLIENT_A, 1.0, "Germany")
        dataset.record(CLIENT_B, 1.0, "Germany")
        dataset.record(CLIENT_A, 1.0, "India")
        assert dataset.per_server_counts() == {"Germany": 2, "India": 1}

    def test_new_address_hook_fires_once(self):
        dataset = CollectedDataset()
        seen = []
        dataset.add_new_address_hook(
            lambda address, time, location: seen.append((address, location)))
        dataset.record(CLIENT_A, 1.0, "Germany")
        dataset.record(CLIENT_A, 2.0, "India")
        assert seen == [(CLIENT_A, "Germany")]

    def test_membership_and_views(self):
        dataset = CollectedDataset()
        dataset.record(CLIENT_A, 1.0, "Germany")
        assert CLIENT_A in dataset
        assert CLIENT_B not in dataset
        assert dataset.addresses == {CLIENT_A}
        assert dataset.first_seen(CLIENT_A) == 1.0
        assert dataset.first_seen(CLIENT_B) is None

    def test_new_addresses_per_day(self):
        dataset = CollectedDataset()
        dataset.record(CLIENT_A, 100.0, "x")
        dataset.record(CLIENT_B, 86_500.0, "x")
        histogram = dataset.new_addresses_per_day()
        assert histogram == {0: 1, 1: 1}


class TestCaptureServer:
    def test_wire_capture(self, network):
        dataset = CollectedDataset()
        CaptureServer(network, SERVER, "Germany", dataset)
        client = NtpClient(network, CLIENT_A)
        assert client.query(SERVER) is not None
        assert CLIENT_A in dataset
        assert dataset.per_server_counts() == {"Germany": 1}

    def test_record_direct_matches_wire_semantics(self, network):
        dataset = CollectedDataset()
        capture = CaptureServer(network, SERVER, "Germany", dataset)
        capture.record_direct(CLIENT_B, 5.0, requests=3)
        assert CLIENT_B in dataset
        assert dataset.observations[CLIENT_B].requests == 3
        assert capture.stats.requests == 3
        assert capture.stats.responses == 3

    def test_capture_server_still_serves_time(self, network):
        dataset = CollectedDataset()
        CaptureServer(network, SERVER, "Germany", dataset)
        client = NtpClient(network, CLIENT_A)
        result = client.query(SERVER)
        assert result is not None and result.stratum == 2
