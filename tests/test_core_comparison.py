"""Unit tests for the Table 1 dataset comparator."""

import pytest

from repro.core.comparison import DatasetComparison
from repro.world.asdb import EYEBALL, AsDatabase, AutonomousSystem


@pytest.fixture()
def asdb():
    db = AsDatabase()
    db.register(AutonomousSystem(1, "A", EYEBALL, "DE"))
    db.register(AutonomousSystem(2, "B", "Content", "US"))
    return db


def _addrs(asdb, asn, count, offset=0):
    block = asdb.blocks_of(asn)[0]
    return [block + offset + index for index in range(1, count + 1)]


class TestSummaries:
    def test_address_and_network_counts(self, asdb):
        comparison = DatasetComparison(asdb)
        comparison.add("x", _addrs(asdb, 1, 5))
        summary = comparison.summary("x")
        assert summary.address_count == 5
        assert summary.net48_count == 1
        assert summary.as_count == 1
        assert summary.median_ips_per_48 == 5.0
        assert summary.median_ips_per_as == 5.0

    def test_median_across_networks(self, asdb):
        comparison = DatasetComparison(asdb)
        step48 = 1 << 80
        addresses = _addrs(asdb, 1, 3) + \
            [asdb.blocks_of(1)[0] + step48 + 1]
        comparison.add("x", addresses)
        summary = comparison.summary("x")
        assert summary.net48_count == 2
        assert summary.median_ips_per_48 == 2.0

    def test_unrouted_excluded_from_as_stats(self, asdb):
        comparison = DatasetComparison(asdb)
        comparison.add("x", _addrs(asdb, 1, 2) + [0])
        summary = comparison.summary("x")
        assert summary.address_count == 3
        assert summary.as_count == 1

    def test_duplicate_label_rejected(self, asdb):
        comparison = DatasetComparison(asdb)
        comparison.add("x", [])
        with pytest.raises(ValueError):
            comparison.add("x", [])


class TestOverlaps:
    def test_overlap_counts(self, asdb):
        comparison = DatasetComparison(asdb)
        shared = _addrs(asdb, 1, 2)
        comparison.add("left", shared + _addrs(asdb, 2, 3))
        comparison.add("right", shared + _addrs(asdb, 2, 2, offset=100))
        overlap = comparison.overlap("left", "right")
        assert overlap.address_overlap == 2
        assert overlap.net48_overlap == 2  # AS1 /48 + AS2 /48
        assert overlap.as_overlap == 2

    def test_disjoint_sets(self, asdb):
        comparison = DatasetComparison(asdb)
        comparison.add("left", _addrs(asdb, 1, 2))
        comparison.add("right", _addrs(asdb, 2, 2))
        overlap = comparison.overlap("left", "right")
        assert overlap.address_overlap == 0
        assert overlap.as_overlap == 0


class TestTable:
    def test_full_table(self, asdb):
        comparison = DatasetComparison(asdb)
        comparison.add("ntp", _addrs(asdb, 1, 3))
        comparison.add("hitlist", _addrs(asdb, 2, 2))
        table = comparison.table("ntp")
        assert {s.label for s in table.summaries} == {"ntp", "hitlist"}
        assert len(table.overlaps) == 1
        assert table.summary_for("ntp").address_count == 3
        assert table.overlap_for("hitlist").address_overlap == 0

    def test_missing_label_raises(self, asdb):
        comparison = DatasetComparison(asdb)
        comparison.add("ntp", [])
        table = comparison.table("ntp")
        with pytest.raises(KeyError):
            table.summary_for("nope")
        with pytest.raises(KeyError):
            table.overlap_for("nope")
