"""Integration tests: actors scanning telescope baits end to end."""

import pytest

from repro.core.actors import (
    NtpSourcingActor,
    covert_profile,
    research_ports,
    research_profile,
)
from repro.core.detection import SENSITIVE_PORTS, ActorDetector
from repro.core.telescope import Telescope
from repro.net.clock import DAY, EventScheduler, HOUR
from repro.ntp.pool import NtpPool
from repro.world.population import build_world
from tests.conftest import small_world_config


@pytest.fixture(scope="module")
def detection_setup():
    """One world with both actors deployed and a telescope watching."""
    world = build_world(small_world_config(scale=0.05))
    pool = NtpPool(world.network)
    scheduler = EventScheduler(world.clock)

    research_as = next(s for s in world.asdb.systems
                       if s.category == "Educational/Research")
    clouds = [s for s in world.asdb.systems
              if s.name.startswith("HyperCloud")]

    overt = NtpSourcingActor(
        world, pool, scheduler, research_profile(),
        server_base=world.allocate_prefix64(clouds[0].number),
        scanner_base=world.allocate_prefix64(research_as.number),
        zones=["us", "de", "jp"], seed=1)
    covert = NtpSourcingActor(
        world, pool, scheduler, covert_profile(),
        server_base=world.allocate_prefix64(clouds[1].number),
        scanner_base=world.allocate_prefix64(clouds[2].number),
        zones=["us", "nl"], seed=2)

    telescope = Telescope(world.network)
    for _ in range(6):
        telescope.sweep(pool)
        scheduler.run_until(world.clock.now() + DAY)
    scheduler.run_until(world.clock.now() + 4 * DAY)

    detector = ActorDetector(
        telescope, world.asdb,
        operator_of_server=lambda address: pool.server(address).operator)
    return world, telescope, detector, overt, covert


class TestResearchPorts:
    def test_count(self):
        assert len(research_ports()) == 1011

    def test_exactly_1011_distinct_valid_ports(self):
        # Regression: the stride-7 filler collides with base ports
        # (3306, 5672, 9200); collisions must be skipped, not allowed
        # to shrink the distinct count or push ports past 65535.
        ports = research_ports()
        assert len(set(ports)) == 1011
        assert all(1 <= port <= 65535 for port in ports)
        assert ports == tuple(sorted(ports))

    def test_includes_service_diversity(self):
        ports = set(research_ports())
        assert {21, 179, 5432} <= ports  # FTP, BGP, Postgres


class TestEndToEnd:
    def test_actors_scanned(self, detection_setup):
        _, _, _, overt, covert = detection_setup
        assert overt.scans_launched > 0
        assert covert.scans_launched > 0

    def test_all_events_matched(self, detection_setup):
        _, telescope, _, _, _ = detection_setup
        assert telescope.events
        assert telescope.match_rate() == 1.0

    def test_two_actors_detected(self, detection_setup):
        _, _, detector, _, _ = detection_setup
        verdicts = detector.report()
        kinds = sorted(verdict.kind for verdict in verdicts)
        assert kinds == ["covert", "research"]

    def test_research_actor_profile(self, detection_setup):
        _, _, detector, overt, _ = detection_setup
        verdict = next(v for v in detector.report() if v.kind == "research")
        observation = verdict.observation
        assert observation.median_delay < HOUR
        assert observation.median_duration <= 15 * 60
        assert observation.server_operators == {"GT"}
        assert len(observation.triggering_servers) == 15

    def test_covert_actor_profile(self, detection_setup):
        _, _, detector, _, covert = detection_setup
        verdict = next(v for v in detector.report() if v.kind == "covert")
        observation = verdict.observation
        assert observation.median_delay > 6 * HOUR
        assert observation.ports <= SENSITIVE_PORTS
        assert observation.server_operators == {"covert"}
        assert observation.source_categories == {"Content"}

    def test_covert_partial_port_coverage(self, detection_setup):
        """Not every bait sees every covert port (detection avoidance)."""
        _, telescope, _, _, covert = detection_setup
        per_bait = {}
        for event in telescope.matched_events():
            if event.bait.server in {s.address for s in covert.servers}:
                per_bait.setdefault(event.dst, set()).add(event.dst_port)
        assert per_bait
        assert any(len(ports) < len(covert.profile.ports)
                   for ports in per_bait.values())

    def test_verdict_reasons_populated(self, detection_setup):
        _, _, detector, _, _ = detection_setup
        for verdict in detector.report():
            assert verdict.reasons
