"""The scanner-actor ecosystem: determinism, strategy fidelity, and
ground-truth attribution on the labeled leak scenario.

Three tiers:

* **golden determinism** — the same seed produces byte-identical probe
  plans *and* byte-identical fired probe streams on fresh networks;
* **Hypothesis strategy properties** — every probe an actor emits is
  attributable to its configured address source (hitlists probe only
  hitlist entries, TGAs stay inside seed /64s, walkers probe only
  dictionary-named PTR addresses, sweeps only low-IID subnet slots);
* **labeled scenarios** — a mixed population aimed at a telescope /48
  must come back with a clean confusion-matrix diagonal, and the
  attribution table must be byte-identical at every worker count.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.core.attribution import attribute_events
from repro.core.ecosystem import (
    AMPLIFICATION_SUBNET_BASE,
    HITLIST_SUBNET_BASE,
    RDNS_DICTIONARY,
    RDNS_SUBNET_BASE,
    RESIDENTIAL_SUBNET_BASE,
    TGA_SUBNET_BASE,
    AmplificationReconActor,
    HitlistSweepActor,
    RdnsWalkActor,
    ResidentialSweepActor,
    ScannerPopulation,
    ScenarioConfig,
    TgaActor,
    leak_scenario,
)
from repro.core.telescope import Telescope
from repro.ipv6 import address as addrmod
from repro.net.clock import EventScheduler
from repro.net.packet import PacketRecord
from repro.net.rdns import ReverseDns
from repro.net.simnet import Network
from tests.conftest import small_world_config
from tests.parity import WORKER_COUNTS, strip_parallel

PREFIX48 = addrmod.parse("2001:6d0:babe::")

SOURCE_BASES = {
    "hitlist": addrmod.parse("2001:db8:aa00::10"),
    "tga": addrmod.parse("2001:db8:bb00::10"),
    "rdns": addrmod.parse("2001:db8:cc00::10"),
    "residential": addrmod.parse("2001:db8:dd00::10"),
    "amplification": addrmod.parse("2001:db8:ee00::10"),
}

ALL_STRATEGIES = ("hitlist", "tga", "rdns", "residential", "amplification")


def fresh_sim():
    network = Network()
    return network, EventScheduler(network.clock)


def sources_for(strategy: str, count: int = 3):
    base = SOURCE_BASES[strategy]
    return [base + offset for offset in range(count)]


def make_hitlist(network, scheduler, seed=11):
    targets = [PREFIX48 + ((0x2000 + index) << 64) + 0xDEAD0000 + index
               for index in range(6)]
    return HitlistSweepActor(
        network, scheduler, name="h", sources=sources_for("hitlist"),
        targets=targets, rounds=2, seed=seed)


def make_tga(network, scheduler, seed=12):
    seeds = [PREFIX48 + ((0x8000 + index) << 64) + 0xBEEF00 + index
             for index in range(3)]
    return TgaActor(network, scheduler, name="t",
                    sources=sources_for("tga"), seeds=seeds,
                    candidates_per_seed=5, seed=seed)


def make_rdns(network, scheduler, seed=13, rdns=None):
    rdns = rdns or ReverseDns()
    for index in range(8):
        address = PREFIX48 + ((0x4000 + index // 4) << 64) + 0xCAFE + index
        rdns.register(address, f"www{index}.leak.example.net")
    return RdnsWalkActor(network, scheduler, name="r",
                         sources=sources_for("rdns"), rdns=rdns,
                         zone48=PREFIX48, seed=seed)


def make_residential(network, scheduler, seed=14):
    return ResidentialSweepActor(
        network, scheduler, name="b", sources=sources_for("residential"),
        base48=PREFIX48, subnet_start=0x6000, subnet_count=10, seed=seed)


def make_amplification(network, scheduler, seed=15):
    return AmplificationReconActor(
        network, scheduler, name="a", sources=sources_for("amplification"),
        base48=PREFIX48, subnet_start=0xA000, subnet_count=8, seed=seed)


ACTOR_FACTORIES = {
    "hitlist": make_hitlist,
    "tga": make_tga,
    "rdns": make_rdns,
    "residential": make_residential,
    "amplification": make_amplification,
}


def test_subnet_bases_disjoint_and_pinned():
    """The scenario's address plan: one disjoint /64 index range each."""
    assert HITLIST_SUBNET_BASE == 0x2000
    assert RDNS_SUBNET_BASE == 0x4000
    assert RESIDENTIAL_SUBNET_BASE == 0x6000
    assert TGA_SUBNET_BASE == 0x8000
    assert AMPLIFICATION_SUBNET_BASE == 0xA000


def run_actor(factory, seed):
    """Deploy one actor on a fresh sim; return (plan, tap stream)."""
    network, scheduler = fresh_sim()
    taps = []

    def tap(record: PacketRecord):
        taps.append((record.time, record.src, record.dst,
                     record.dst_port, record.transport.value))

    network.add_tap(tap)
    actor = factory(network, scheduler, seed=seed)
    actor.deploy()
    scheduler.run_all()
    return actor.planned(), tuple(taps), actor


class TestGoldenDeterminism:
    @pytest.mark.parametrize("strategy", sorted(ACTOR_FACTORIES))
    def test_same_seed_same_stream(self, strategy):
        factory = ACTOR_FACTORIES[strategy]
        plan_a, taps_a, actor_a = run_actor(factory, seed=99)
        plan_b, taps_b, actor_b = run_actor(factory, seed=99)
        assert plan_a == plan_b
        assert taps_a == taps_b
        assert actor_a.probe_log == actor_b.probe_log
        assert actor_a.probes_sent == len(plan_a) > 0

    @pytest.mark.parametrize("strategy", sorted(ACTOR_FACTORIES))
    def test_different_seed_different_plan(self, strategy):
        # Source choice is seeded even when the target walk is fixed.
        factory = ACTOR_FACTORIES[strategy]
        plan_a, _, _ = run_actor(factory, seed=1)
        plan_b, _, _ = run_actor(factory, seed=2)
        assert plan_a != plan_b

    def test_probe_log_matches_plan_order(self):
        plan, _, actor = run_actor(make_hitlist, seed=5)
        assert [(src, dst, port) for _, src, dst, port in actor.probe_log] \
            == [(src, dst, port) for _, src, dst, port in plan]


class TestStrategyProperties:
    """Every probe is attributable to the strategy's address source."""

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_hitlist_probes_only_hitlist_entries(self, data):
        network, scheduler = fresh_sim()
        targets = data.draw(st.lists(
            st.integers(min_value=1 << 64, max_value=(1 << 128) - 1),
            min_size=1, max_size=12, unique=True))
        rounds = data.draw(st.integers(min_value=1, max_value=3))
        actor = HitlistSweepActor(
            network, scheduler, name="h", sources=sources_for("hitlist"),
            targets=targets, rounds=rounds,
            seed=data.draw(st.integers(0, 1000)))
        plan = actor.planned()
        assert {dst for _, _, dst, _ in plan} <= actor.address_pool()
        assert len(plan) == len(targets) * len(actor.ports) * rounds

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_tga_mutations_stay_in_seed_64s(self, data):
        network, scheduler = fresh_sim()
        seeds = data.draw(st.lists(
            st.integers(min_value=1 << 64, max_value=(1 << 128) - 1),
            min_size=1, max_size=5, unique_by=lambda a: a >> 64))
        actor = TgaActor(network, scheduler, name="t",
                         sources=sources_for("tga"), seeds=seeds,
                         candidates_per_seed=data.draw(
                             st.integers(min_value=1, max_value=8)),
                         seed=data.draw(st.integers(0, 1000)))
        pool = actor.address_pool()
        for _, _, dst, _ in actor.planned():
            assert addrmod.prefix(dst, 64) in pool
            assert dst not in seeds  # mutations, never the seed itself

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_rdns_probes_only_dictionary_named_hosts(self, seed):
        network, scheduler = fresh_sim()
        rdns = ReverseDns()
        named = PREFIX48 + (0x4000 << 64) + 0x10
        unnamed = PREFIX48 + (0x4001 << 64) + 0x11
        offzone = addrmod.parse("2001:db8:9999::5")
        rdns.register(named, "vpn-gateway.leak.example.net")
        rdns.register(unnamed, "zzz-opaque.leak.example.net")
        rdns.register(offzone, "www.elsewhere.example.net")
        actor = RdnsWalkActor(network, scheduler, name="r",
                              sources=sources_for("rdns"), rdns=rdns,
                              zone48=PREFIX48, seed=seed)
        destinations = {dst for _, _, dst, _ in actor.planned()}
        assert destinations == {named}
        for dst in destinations:
            name = rdns.lookup(dst)
            assert name is not None
            assert any(word in name for word in RDNS_DICTIONARY)
            assert addrmod.prefix(dst, 48) == PREFIX48

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_residential_probes_low_iid_subnet_slots(self, data):
        network, scheduler = fresh_sim()
        count = data.draw(st.integers(min_value=1, max_value=20))
        actor = ResidentialSweepActor(
            network, scheduler, name="b",
            sources=sources_for("residential"), base48=PREFIX48,
            subnet_start=0x6000, subnet_count=count,
            seed=data.draw(st.integers(0, 1000)))
        plan = actor.planned()
        assert {dst for _, _, dst, _ in plan} == actor.address_pool()
        for _, _, dst, _ in plan:
            assert addrmod.prefix(dst, 48) == PREFIX48
            assert addrmod.iid(dst) in actor.iids
            subnet = (dst >> 64) & 0xFFFF
            assert 0x6000 <= subnet < 0x6000 + count

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_amplification_probes_only_udp_123(self, data):
        network, scheduler = fresh_sim()
        count = data.draw(st.integers(min_value=1, max_value=16))
        actor = AmplificationReconActor(
            network, scheduler, name="a",
            sources=sources_for("amplification"), base48=PREFIX48,
            subnet_start=0xA000, subnet_count=count,
            seed=data.draw(st.integers(0, 1000)))
        plan = actor.planned()
        assert {dst for _, _, dst, _ in plan} == actor.address_pool()
        for _, _, dst, port in plan:
            assert port == 123
            assert addrmod.prefix(dst, 48) == PREFIX48
            assert addrmod.iid(dst) in actor.iids
            subnet = (dst >> 64) & 0xFFFF
            assert 0xA000 <= subnet < 0xA000 + count

    def test_amplification_probe_is_udp_monlist(self):
        """The fired probe is a 72-byte UDP monlist request, not TCP."""
        network, scheduler = fresh_sim()
        taps = []
        network.add_tap(lambda record: taps.append(record))
        actor = make_amplification(network, scheduler, seed=3)
        actor.deploy()
        scheduler.run_all()
        assert taps
        for record in taps:
            assert record.transport.value == "udp"
            assert record.dst_port == 123
            assert record.size == 72

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_sources_always_from_configured_pool(self, seed):
        network, scheduler = fresh_sim()
        actor = make_hitlist(network, scheduler, seed=seed)
        assert {src for _, src, _, _ in actor.planned()} \
            <= set(actor.sources)


def run_leak_scenario(worker_pool=None):
    """One labeled mixed-population run; returns (population, report)."""
    network, scheduler = fresh_sim()
    rdns = ReverseDns()
    scope = Telescope(network, prefix48=PREFIX48)
    population = leak_scenario(
        network, scheduler, rdns, PREFIX48,
        sources={strategy: sources_for(strategy)
                 for strategy in SOURCE_BASES},
        config=ScenarioConfig(seed=7))
    scheduler.run_all()
    report, timing = attribute_events(
        scope.events, truth=population.ground_truth(), rdns=rdns,
        pool=worker_pool, chunk_size=16)
    return population, report, timing


class TestLabeledScenario:
    def test_every_strategy_detected_on_its_own_cluster(self):
        population, report, _ = run_leak_scenario()
        assert len(report.attributions) == 5
        assert {a.strategy for a in report.attributions} \
            == set(ALL_STRATEGIES)

    def test_confusion_diagonal_meets_floor(self):
        _, report, _ = run_leak_scenario()
        assert report.diagonal_accuracy() >= 0.9
        metrics = report.strategy_metrics()
        for strategy in ALL_STRATEGIES:
            assert metrics[strategy]["precision"] >= 0.9, strategy
            assert metrics[strategy]["recall"] >= 0.9, strategy
            assert metrics[strategy]["support"] == 1

    def test_confusion_matrix_shape(self):
        _, report, _ = run_leak_scenario()
        confusion = report.confusion()
        for truth, row in confusion.items():
            assert row == {truth: 1}

    def test_ground_truth_covers_every_source(self):
        population, report, _ = run_leak_scenario()
        truth = population.ground_truth()
        for actor in population.actors:
            for source in actor.sources:
                assert truth[source] == actor.strategy
                assert population.actor_of(source) == actor.name

    def test_population_rows_report_probe_counts(self):
        population, _, _ = run_leak_scenario()
        for row in population.rows():
            assert row["probes_sent"] == row["planned"] > 0

    def test_attribution_parity_across_worker_counts(self):
        """Byte-identical attribution tables at 0/2/4 workers."""
        _, reference, timing = run_leak_scenario()
        assert timing is None  # sequential extraction carries no timing
        for workers in WORKER_COUNTS:
            with api.ExecutionContext(workers=workers) as ctx:
                _, candidate, _ = run_leak_scenario(ctx.pool)
            assert candidate.tables() == reference.tables(), \
                f"workers={workers}"

    def test_external_truth_registration(self):
        network, scheduler = fresh_sim()
        population = ScannerPopulation(network, scheduler)
        population.add_external("GT", "ntp", [1, 2])
        assert population.ground_truth() == {1: "ntp", 2: "ntp"}
        assert population.actor_of(1) == "GT"


@pytest.fixture(scope="module")
def ecosystem_run():
    """One full api.ecosystem run shared by the API-level tests."""
    return api.ecosystem(api.EcosystemConfig(
        world=small_world_config(scale=0.08), window_days=2.0))


class TestEcosystemApi:
    def test_diagonal_accuracy_floor(self, ecosystem_run):
        accuracy = ecosystem_run.report.tables["accuracy"]
        assert accuracy["diagonal"] >= 0.9
        assert accuracy["labeled"] == accuracy["clusters"] == 7

    def test_all_strategies_present(self, ecosystem_run):
        confusion = ecosystem_run.report.tables["confusion"]
        assert set(confusion) == {"ntp"} | set(ALL_STRATEGIES)
        metrics = ecosystem_run.report.tables["strategy_metrics"]
        assert metrics["ntp"]["support"] == 2  # overt GT + covert

    def test_report_shape(self, ecosystem_run):
        report = ecosystem_run.report
        assert report.command == "ecosystem"
        for table in ("attribution", "confusion", "strategy_metrics",
                      "accuracy", "telescope", "population", "detector",
                      "attribution_windows"):
            assert table in report.tables, table
        document = report.as_document()
        assert document["config"]["scenario"]["hitlist_targets"] == 12

    def test_windows_complete_only(self, ecosystem_run):
        windows = ecosystem_run.report.tables["attribution_windows"]
        assert windows
        for document in windows:
            assert document["window"]["days"] == 2.0

    def test_api_parity_workers_0_vs_2(self):
        """Full-report byte parity of ecosystem runs across workers."""
        def run(workers):
            return api.ecosystem(api.EcosystemConfig(
                world=small_world_config(scale=0.05), sweep_days=2,
                settle_days=1, workers=workers))

        reference = strip_parallel(run(0).report.as_document())
        candidate = strip_parallel(run(2).report.as_document())
        assert candidate == reference

    def test_config_validation(self):
        with pytest.raises(ValueError, match="sweep_days"):
            api.EcosystemConfig(sweep_days=0)
        with pytest.raises(ValueError, match="step_days"):
            api.EcosystemConfig(step_days=2.0)
        with pytest.raises(ValueError, match="window_days"):
            api.EcosystemConfig(window_days=-1.0)
        with pytest.raises(ValueError, match="hitlist_targets"):
            ScenarioConfig(hitlist_targets=0)
