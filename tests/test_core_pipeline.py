"""Tests for the end-to-end experiment pipeline mechanics."""

import pytest

from repro.core.pipeline import ExperimentConfig, run_experiment
from tests.conftest import small_world_config


class TestPipeline:
    def test_artifacts_present(self, experiment):
        assert len(experiment.ntp_dataset) > 500
        assert experiment.hitlist.full_size > 100
        assert experiment.ntp_scan.targets_seen == len(experiment.ntp_dataset)
        assert experiment.hitlist_scan.targets_seen == \
            experiment.hitlist.full_size
        assert experiment.rl_dataset is not None

    def test_comparison_covers_all_datasets(self, experiment):
        comparison = experiment.comparison()
        assert set(comparison.labels) == \
            {"ntp", "rl", "hitlist-full", "hitlist-public"}

    def test_table1_reference_is_ntp(self, experiment):
        table = experiment.table1()
        assert table.reference == "ntp"
        assert len(table.overlaps) == 3

    def test_hitlist_built_before_final_week(self, experiment):
        assert experiment.hitlist.built_at < experiment.world.clock.now()

    def test_rl_optional(self):
        from repro.core.campaign import CampaignConfig

        config = ExperimentConfig(
            world=small_world_config(scale=0.05),
            campaign=CampaignConfig(days=4, wire_fraction=0.0),
            include_rl=False, gap_days=0, lead_days=3, final_days=1,
        )
        result = run_experiment(config)
        assert result.rl_dataset is None
        comparison = result.comparison()
        assert "rl" not in comparison.labels

    def test_scanner_lives_in_research_space(self, experiment):
        from repro.core.pipeline import SCANNER_PTR_NAME

        sources = experiment.world.rdns.addresses_of(SCANNER_PTR_NAME)
        assert len(sources) == 1
        system = experiment.world.asdb.lookup(sources[0])
        assert system is not None
        assert system.category == "Educational/Research"

    def test_single_scanner_identity(self, experiment):
        """Both scan paths share one source; the PTR name is unique."""
        from repro.core.pipeline import SCANNER_PTR_NAME, _scanner_source

        assert len(experiment.world.rdns.addresses_of(SCANNER_PTR_NAME)) == 1
        # Allocating a second identity on the same world is rejected.
        with pytest.raises(RuntimeError, match="already"):
            _scanner_source(experiment.world)
