"""Tests for the real-time collection → scan coupling."""

import pytest

from repro.core.collector import CollectedDataset
from repro.core.realtime import RealTimeScanQueue
from repro.ipv6 import parse
from repro.scan.engine import EngineConfig, ScanEngine

SRC = parse("2001:db8:5c::1")


@pytest.fixture()
def engine(network):
    return ScanEngine(network, SRC, EngineConfig(drive_clock=False))


class TestCoupling:
    def test_new_address_triggers_scan(self, network, engine):
        dataset = CollectedDataset()
        queue = RealTimeScanQueue(engine)
        queue.attach(dataset)
        dataset.record(parse("2001:db8::1"), 0.0, "Germany")
        assert queue.stats.triggered == 1
        assert queue.stats.scanned == 1
        assert queue.results.targets_seen == 1

    def test_repeat_sighting_not_rescanned(self, network, engine):
        dataset = CollectedDataset()
        queue = RealTimeScanQueue(engine)
        queue.attach(dataset)
        dataset.record(parse("2001:db8::1"), 0.0, "Germany")
        dataset.record(parse("2001:db8::1"), 1.0, "India")
        assert queue.stats.triggered == 1

    def test_sampling_suppresses_but_counts(self, network, engine):
        dataset = CollectedDataset()
        queue = RealTimeScanQueue(engine, sample_rate=0.01, seed=3)
        queue.attach(dataset)
        for index in range(100):
            dataset.record(parse("2001:db8::") + index, 0.0, "Germany")
        assert queue.stats.suppressed > 50
        assert queue.results.targets_seen == 100
        assert queue.stats.scanned == 100 - queue.stats.suppressed

    def test_invalid_sample_rate(self, engine):
        with pytest.raises(ValueError):
            RealTimeScanQueue(engine, sample_rate=0.0)

    def test_attach_accepts_bus_directly(self, network, engine):
        from repro.runtime.bus import AddressSighted, EventBus

        bus = EventBus()
        queue = RealTimeScanQueue(engine).attach(bus)
        bus.publish(AddressSighted(address=parse("2001:db8::1"), time=0.0,
                                   server_location="Germany"))
        assert queue.stats.triggered == 1

    def test_scan_results_accumulate(self, network, engine):
        import random

        from repro.world import devices as dev

        rng = random.Random(1)
        device = dev.make_fritzbox(rng, 0, 0x3C3786009999)
        device.assign_address(parse("2001:db8:77::"), rng)
        device.materialize(network)

        dataset = CollectedDataset()
        queue = RealTimeScanQueue(engine)
        queue.attach(dataset)
        dataset.record(device.address, 0.0, "Germany")
        assert queue.results.responsive_addresses("http") == {device.address}


class TestBackpressure:
    def test_bounded_intake_drops_and_accounts(self, network, engine):
        """When sourcing outruns the scanner, drops are explicit."""
        dataset = CollectedDataset()
        queue = RealTimeScanQueue(engine, capacity=5, auto_drain=False)
        queue.attach(dataset)
        for index in range(8):
            dataset.record(parse("2001:db8::") + index, 0.0, "Germany")
        assert queue.pending == 5
        assert queue.stats.dropped == 3
        assert queue.stats.received == 8
        # Dropped targets still count toward the hit-rate denominator.
        assert queue.results.targets_seen == 3
        drained = queue.drain()
        assert drained == 5
        assert queue.stats.processed == 5
        assert queue.results.targets_seen == 8
        assert queue.pending == 0

    def test_drain_limit_batches(self, network, engine):
        dataset = CollectedDataset()
        queue = RealTimeScanQueue(engine, capacity=10, auto_drain=False)
        queue.attach(dataset)
        for index in range(6):
            dataset.record(parse("2001:db8::") + index, 0.0, "Germany")
        assert queue.drain(limit=4) == 4
        assert queue.pending == 2

    def test_auto_drain_keeps_queue_empty(self, network, engine):
        dataset = CollectedDataset()
        queue = RealTimeScanQueue(engine, capacity=2)
        queue.attach(dataset)
        for index in range(10):
            dataset.record(parse("2001:db8::") + index, 0.0, "Germany")
        assert queue.pending == 0
        assert queue.stats.dropped == 0
        assert queue.stats.scanned == 10


class TestSamplingDenominators:
    def test_targets_seen_consistent_across_paths(self, network, engine):
        """suppressed + dropped + fed all land in targets_seen once."""
        dataset = CollectedDataset()
        queue = RealTimeScanQueue(engine, sample_rate=0.5, seed=7,
                                  capacity=1_000)
        queue.attach(dataset)
        total = 200
        for index in range(total):
            dataset.record(parse("2001:db8::") + index, 0.0, "Germany")
        stats = queue.stats
        assert stats.triggered == total
        assert queue.results.targets_seen == total
        assert stats.suppressed + stats.processed + stats.dropped == total
        # Every non-suppressed target reached the engine exactly once.
        assert engine.stats.targets_offered == stats.processed
        assert stats.scanned == engine.stats.targets_scanned
