"""Tests for the real-time collection → scan coupling."""

import pytest

from repro.core.collector import CollectedDataset
from repro.core.realtime import RealTimeScanQueue
from repro.ipv6 import parse
from repro.scan.engine import EngineConfig, ScanEngine

SRC = parse("2001:db8:5c::1")


@pytest.fixture()
def engine(network):
    return ScanEngine(network, SRC, EngineConfig(drive_clock=False))


class TestCoupling:
    def test_new_address_triggers_scan(self, network, engine):
        dataset = CollectedDataset()
        queue = RealTimeScanQueue(engine)
        queue.attach(dataset)
        dataset.record(parse("2001:db8::1"), 0.0, "Germany")
        assert queue.stats.triggered == 1
        assert queue.stats.scanned == 1
        assert queue.results.targets_seen == 1

    def test_repeat_sighting_not_rescanned(self, network, engine):
        dataset = CollectedDataset()
        queue = RealTimeScanQueue(engine)
        queue.attach(dataset)
        dataset.record(parse("2001:db8::1"), 0.0, "Germany")
        dataset.record(parse("2001:db8::1"), 1.0, "India")
        assert queue.stats.triggered == 1

    def test_sampling_suppresses_but_counts(self, network, engine):
        dataset = CollectedDataset()
        queue = RealTimeScanQueue(engine, sample_rate=0.01, seed=3)
        queue.attach(dataset)
        for index in range(100):
            dataset.record(parse("2001:db8::") + index, 0.0, "Germany")
        assert queue.stats.suppressed > 50
        assert queue.results.targets_seen == 100
        assert queue.stats.scanned == 100 - queue.stats.suppressed

    def test_invalid_sample_rate(self, engine):
        with pytest.raises(ValueError):
            RealTimeScanQueue(engine, sample_rate=0.0)

    def test_scan_results_accumulate(self, network, engine):
        import random

        from repro.world import devices as dev

        rng = random.Random(1)
        device = dev.make_fritzbox(rng, 0, 0x3C3786009999)
        device.assign_address(parse("2001:db8:77::"), rng)
        device.materialize(network)

        dataset = CollectedDataset()
        queue = RealTimeScanQueue(engine)
        queue.attach(dataset)
        dataset.record(device.address, 0.0, "Germany")
        assert queue.results.responsive_addresses("http") == {device.address}
