"""Tests for the telescope (Section 5 methodology)."""

import pytest

from repro.core.telescope import Telescope
from repro.ipv6 import parse, prefix
from repro.ntp.pool import NtpPool
from repro.ntp.server import NtpServer

SERVER = parse("2001:500::77")


@pytest.fixture()
def telescope(network):
    return Telescope(network)


@pytest.fixture()
def server(network):
    return NtpServer(network, SERVER, location="XX")


class TestBaits:
    def test_each_query_fresh_address(self, network, telescope, server):
        first = telescope.query(SERVER)
        second = telescope.query(SERVER)
        assert first.address != second.address
        assert prefix(first.address, 48) == telescope.prefix48

    def test_answered_flag(self, network, telescope, server):
        record = telescope.query(SERVER)
        assert record.answered

    def test_unanswered_flag(self, network, telescope):
        record = telescope.query(parse("2001:500::dead"))
        assert not record.answered

    def test_response_rate(self, network, telescope, server):
        telescope.query(SERVER)
        telescope.query(parse("2001:500::dead"))
        assert telescope.response_rate() == pytest.approx(0.5)

    def test_sweep_queries_all_pool_servers(self, network, telescope, server):
        pool = NtpPool(network)
        pool.register(SERVER, "de")
        other = parse("2001:500::78")
        NtpServer(network, other, location="YY")
        pool.register(other, "us")
        records = telescope.sweep(pool)
        assert {record.server for record in records} == {SERVER, other}


class TestCapture:
    def test_inbound_syn_matched_to_bait(self, network, telescope, server):
        record = telescope.query(SERVER)
        scanner = parse("2001:db8:bad::1")
        network.clock.advance(100.0)
        network.tcp_connect(scanner, record.address, 443)
        matched = telescope.matched_events()
        assert len(matched) == 1
        event = matched[0]
        assert event.src == scanner
        assert event.dst_port == 443
        assert event.bait.server == SERVER
        assert not event.is_scatter

    def test_scatter_detected(self, network, telescope, server):
        telescope.query(SERVER)
        unused = telescope.prefix48 + (0x9999 << 64) + 1
        network.tcp_connect(parse("2001:db8:bad::1"), unused, 22)
        assert len(telescope.scatter_events()) == 1
        assert telescope.match_rate() < 1.0

    def test_own_ntp_response_not_an_event(self, network, telescope, server):
        telescope.query(SERVER)
        assert telescope.events == []

    def test_udp_probes_captured(self, network, telescope, server):
        record = telescope.query(SERVER)
        network.clock.advance(60.0)
        network.udp_request(parse("2001:db8:bad::2"), record.address,
                            5683, b"probe")
        matched = telescope.matched_events()
        assert len(matched) == 1
        assert matched[0].transport == "udp"

    def test_traffic_outside_prefix_ignored(self, network, telescope, server):
        telescope.query(SERVER)
        network.tcp_connect(parse("2001:db8:bad::1"),
                            parse("2001:db8:aaaa::1"), 443)
        assert telescope.events == []

    def test_match_rate_all_matched(self, network, telescope, server):
        record = telescope.query(SERVER)
        network.clock.advance(60.0)
        for port in (443, 8443, 3389):
            network.tcp_connect(parse("2001:db8:bad::1"),
                                record.address, port)
        assert telescope.match_rate() == 1.0
        assert len(telescope.events) == 3
