"""Collect the library's docstring examples as tests."""

import doctest

import pytest

import repro.ipv6.address
import repro.ipv6.eui64
import repro.ipv6.iid
import repro.proto.http
import repro.report.formatting

MODULES = [
    repro.ipv6.address,
    repro.ipv6.eui64,
    repro.ipv6.iid,
    repro.proto.http,
    repro.report.formatting,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
