"""Failure-injection tests: packet loss, dead services, mid-scan churn,
and worker processes dying mid-batch."""

import random

import pytest

from repro.core.campaign import CampaignConfig, CollectionCampaign
from repro.ipv6 import parse
from repro.net.simnet import Network
from repro.ntp.client import NtpClient
from repro.ntp.server import NtpServer
from repro.scan.engine import EngineConfig, ScanEngine
from repro.scan.result import ScanResults
from repro.world import devices as dev

SRC = parse("2001:db8:5c::1")
PREFIX = parse("2001:db8:700::")


def _lossy_network(loss_rate):
    return Network(loss_rate=loss_rate, rng=random.Random(99))


class TestLossyScans:
    def test_scans_degrade_not_crash(self):
        network = _lossy_network(0.4)
        rng = random.Random(3)
        devices = []
        for index in range(30):
            device = dev.make_fritzbox(rng, index, 0x3C3786100000 + index)
            device.assign_address(PREFIX + (index << 64), rng)
            device.materialize(network)
            devices.append(device)
        engine = ScanEngine(network, SRC, EngineConfig(drive_clock=False))
        results = engine.run([d.address for d in devices])
        hits = len(results.responsive_addresses("http"))
        assert 0 < hits < 30  # some succeed, some are lost

    def test_zero_loss_full_hits(self):
        network = Network()
        rng = random.Random(3)
        addresses = []
        for index in range(10):
            device = dev.make_fritzbox(rng, index, 0x3C3786200000 + index)
            device.assign_address(PREFIX + (index << 64), rng)
            device.materialize(network)
            addresses.append(device.address)
        engine = ScanEngine(network, SRC, EngineConfig(drive_clock=False))
        results = engine.run(addresses)
        assert len(results.responsive_addresses("http")) == 10

    def test_lossy_ntp_sync_sometimes_fails(self):
        network = _lossy_network(0.5)
        NtpServer(network, parse("2001:500::1"), location="X")
        client = NtpClient(network, parse("2001:db8::c"))
        outcomes = [client.query(parse("2001:500::1")) for _ in range(60)]
        assert any(o is None for o in outcomes)
        assert any(o is not None for o in outcomes)


class TestMidScanChurn:
    def test_scan_after_rehome_misses_old_address(self):
        network = Network()
        rng = random.Random(5)
        device = dev.make_fritzbox(rng, 0, 0x3C3786300001)
        device.assign_address(PREFIX, rng)
        device.materialize(network)
        engine = ScanEngine(network, SRC, EngineConfig(drive_clock=False))
        results = ScanResults()
        old = device.address
        assert engine.feed(old, results)
        device.rehome(network, parse("2001:db8:701::"), rng)
        # A stale re-discovery of the old address now fails everywhere.
        network.clock.advance(4 * 86_400)
        assert engine.feed(old, results)
        assert len(results.responsive_addresses("http")) == 1

    def test_campaign_with_lossy_network(self):
        """A lossy fabric slows collection but nothing breaks."""
        from repro.world.population import build_world
        from tests.conftest import small_world_config

        world = build_world(small_world_config(scale=0.05))
        world.network.loss_rate = 0.3
        campaign = CollectionCampaign(
            world, CampaignConfig(days=2, wire_fraction=0.3, seed=8))
        report = campaign.run()
        assert len(report.dataset) > 0


class TestBrokenServices:
    def test_stopped_ntp_server_collects_nothing(self, network):
        from repro.core.collector import CaptureServer, CollectedDataset

        dataset = CollectedDataset()
        capture = CaptureServer(network, parse("2001:500::9"), "X", dataset)
        capture.server.stop()
        client = NtpClient(network, parse("2001:db8::d"))
        assert client.query(parse("2001:500::9")) is None
        assert len(dataset) == 0

    def test_garbage_speaking_service_yields_failed_grabs(self, network):
        from repro.net.simnet import SimpleSession

        class GarbageService:
            def accept(self, peer, peer_port):
                return SimpleSession(respond=lambda data: b"\x00\xff\x13",
                                     banner=b"\x00garbage\x00")

        target = parse("2001:db8:702::1")
        host = network.add_host(target)
        for port in (22, 80, 443, 1883, 5672):
            host.bind_tcp(port, GarbageService())
        engine = ScanEngine(network, SRC, EngineConfig(drive_clock=False))
        results = ScanResults()
        engine.feed(target, results)
        for protocol in ("http", "https", "ssh", "mqtt", "amqp"):
            assert results.responsive_addresses(protocol) == set(), protocol


class TestWorkerDeath:
    """A scan worker dying mid-batch is a *typed* failure, not a hang,
    a partial merge, or a bare ``BrokenProcessPool``."""

    @staticmethod
    def _engine_and_targets():
        from repro.runtime.parallel import ParallelShardedScanEngine

        network = Network()
        rng = random.Random(11)
        targets = []
        for index in range(40):
            device = dev.make_fritzbox(rng, index, 0x3C3786400000 + index)
            device.assign_address(PREFIX + (index << 64), rng)
            device.materialize(network)
            targets.append(device.address)
        engine = ParallelShardedScanEngine(
            network, SRC, EngineConfig(drive_clock=False),
            shards=4, workers=2, name="death")
        return engine, targets

    def test_mid_batch_death_surfaces_typed_error(self, monkeypatch):
        from repro.runtime.parallel import CRASH_ENV, WorkerCrashed

        engine, targets = self._engine_and_targets()
        monkeypatch.setenv(CRASH_ENV, "1:3")
        with pytest.raises(WorkerCrashed) as excinfo:
            engine.run(targets, label="doomed")
        assert 1 in excinfo.value.shards
        # Nothing from the surviving shards leaked into a partial merge.
        assert engine.stats.targets_offered == 0
        assert engine.tracked_targets == 0

    def test_engine_survives_a_crashed_run(self, monkeypatch):
        """After the doomed run fails, the same engine completes the
        batch once the fault is gone — full hits, nothing wedged."""
        from repro.runtime.parallel import CRASH_ENV, WorkerCrashed

        engine, targets = self._engine_and_targets()
        monkeypatch.setenv(CRASH_ENV, "1:3")
        with pytest.raises(WorkerCrashed):
            engine.run(targets, label="doomed")
        monkeypatch.delenv(CRASH_ENV)
        results = engine.run(targets, label="retry")
        assert len(results.responsive_addresses("http")) == len(targets)
        assert engine.stats.targets_offered == len(targets)
