"""Golden-value determinism for the sourcing→scan data path.

The staged-runtime refactor (event bus, scheduler/executor split,
probe registry, sharding) must be behaviour-preserving: under fixed
seeds, ``run_experiment`` produces *exactly* the responsive-address and
per-protocol grab counts of the seed implementation.  The numbers below
were captured from the seed commit (5f12bc1) at this configuration and
verified identical against the refactored path — both single-engine
and ``scan_shards=4``.
"""

import pytest

from repro.core.campaign import CampaignConfig
from repro.core.pipeline import ExperimentConfig, run_experiment
from repro.scan.result import PROTOCOLS
from repro.world.population import WorldConfig

#: protocol → (ntp responsive, ntp grabs, hitlist responsive, hitlist
#: grabs) at the golden configuration, as produced by the seed commit.
GOLDEN_COUNTS = {
    "http": (36, 1160, 192, 4683),
    "https": (34, 1160, 191, 4683),
    "ssh": (5, 1160, 40, 4683),
    "mqtt": (1, 1160, 12, 4683),
    "mqtts": (0, 1160, 3, 4683),
    "amqp": (1, 1160, 12, 4683),
    "amqps": (0, 1160, 3, 4683),
    "coap": (6, 1160, 7, 4683),
}
GOLDEN_NTP_TARGETS = 1160
GOLDEN_HITLIST_TARGETS = 4683


def _golden_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        world=WorldConfig(seed=20240720, scale=0.05),
        campaign=CampaignConfig(days=5, wire_fraction=0.0),
        include_rl=False, gap_days=1, lead_days=3, final_days=1,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def _check_counts(result):
    assert result.ntp_scan.targets_seen == GOLDEN_NTP_TARGETS
    assert result.hitlist_scan.targets_seen == GOLDEN_HITLIST_TARGETS
    observed = {
        protocol: (
            len(result.ntp_scan.responsive_addresses(protocol)),
            len(result.ntp_scan.grabs(protocol)),
            len(result.hitlist_scan.responsive_addresses(protocol)),
            len(result.hitlist_scan.grabs(protocol)),
        )
        for protocol in PROTOCOLS
    }
    assert observed == GOLDEN_COUNTS


class TestGoldenDeterminism:
    def test_single_engine_matches_seed_commit(self):
        _check_counts(run_experiment(_golden_config()))

    def test_sharded_engines_match_single_engine(self):
        """shards=4 merges to the same totals as the one-engine run."""
        _check_counts(run_experiment(_golden_config(scan_shards=4)))

    def test_sharded_responsive_sets_identical(self):
        """Beyond counts: the same addresses respond, per protocol."""
        single = run_experiment(_golden_config())
        sharded = run_experiment(_golden_config(scan_shards=4))
        for protocol in PROTOCOLS:
            assert (single.hitlist_scan.responsive_addresses(protocol)
                    == sharded.hitlist_scan.responsive_addresses(protocol))
            assert (single.ntp_scan.responsive_addresses(protocol)
                    == sharded.ntp_scan.responsive_addresses(protocol))
        assert single.hitlist_scan.hit_rate() == \
            pytest.approx(sharded.hitlist_scan.hit_rate())

    def test_parallel_workers_match_seed_commit(self):
        """The multiprocess backend lands on the seed's golden counts —
        and its full report is byte-identical to the sequential sharded
        run's (tests.parity defines and strips the permitted
        differences)."""
        from tests import parity

        def config(workers):
            return _golden_config(scan_shards=4, parallel_workers=workers)

        runs = parity.assert_study_parity(config, worker_counts=(2,))
        for study in runs.values():
            _check_counts(study.experiment)
