"""Paper-shape integration tests.

Each test asserts one qualitative claim of the paper against the shared
small-scale experiment: not the absolute numbers (the substrate is a
simulator), but who wins, in which direction, and by roughly what kind
of factor.  These are the claims the benchmark harness re-reports at
full scale.
"""

import pytest

from repro.analysis import devicetypes, keyreuse, macs, security, structure


class TestTable1Shapes:
    def test_hitlist_covers_more_ases(self, experiment):
        table = experiment.table1()
        assert table.summary_for("hitlist-full").as_count > \
            table.summary_for("ntp").as_count

    def test_ntp_denser_networks(self, experiment):
        """Median IPs per /48 and per AS: NTP >> hitlist (client nets)."""
        table = experiment.table1()
        ntp = table.summary_for("ntp")
        full = table.summary_for("hitlist-full")
        public = table.summary_for("hitlist-public")
        assert ntp.median_ips_per_48 > full.median_ips_per_48
        assert ntp.median_ips_per_as > full.median_ips_per_as
        assert ntp.median_ips_per_as > public.median_ips_per_as

    def test_address_overlap_is_small(self, experiment):
        table = experiment.table1()
        ntp_count = table.summary_for("ntp").address_count
        overlap = table.overlap_for("hitlist-full").address_overlap
        assert overlap < 0.05 * ntp_count

    def test_48_overlap_substantial(self, experiment):
        """Many NTP /48s also appear in the hitlist (R&L's finding)."""
        overlap = experiment.table1().overlap_for("hitlist-full")
        assert overlap.net48_overlap > 10

    def test_rl_overlap_partial(self, experiment):
        """Our data overlaps R&L's but both find exclusive networks."""
        table = experiment.table1()
        overlap = table.overlap_for("rl")
        assert 0 < overlap.net48_overlap < \
            table.summary_for("ntp").net48_count


class TestFigure1Shapes:
    def test_ntp_less_structured_than_hitlist(self, experiment):
        ntp = structure.analyze("ntp", experiment.ntp_dataset.addresses,
                                experiment.world.asdb)
        hitlist = structure.analyze("hl", experiment.hitlist.full,
                                    experiment.world.asdb)
        assert ntp.structured_share < hitlist.structured_share
        assert ntp.high_entropy_share > hitlist.high_entropy_share

    def test_ntp_more_eyeball_ases(self, experiment):
        ntp = structure.analyze("ntp", experiment.ntp_dataset.addresses,
                                experiment.world.asdb)
        hitlist = structure.analyze("hl", experiment.hitlist.full,
                                    experiment.world.asdb)
        assert ntp.eyeball_as_share > hitlist.eyeball_as_share


class TestTable2Shapes:
    def test_hitlist_wins_everything_but_coap(self, experiment):
        ntp, hitlist = experiment.ntp_scan, experiment.hitlist_scan
        for protocol in ("http", "https", "ssh"):
            assert len(hitlist.responsive_addresses(protocol)) > \
                len(ntp.responsive_addresses(protocol)), protocol

    def test_ntp_wins_coap(self, experiment):
        ntp = len(experiment.ntp_scan.responsive_addresses("coap"))
        hitlist = len(experiment.hitlist_scan.responsive_addresses("coap"))
        assert ntp > 3 * hitlist

    def test_ntp_hit_rate_lower(self, experiment):
        assert experiment.ntp_scan.hit_rate() < \
            experiment.hitlist_scan.hit_rate()

    def test_hitlist_https_tls_failures(self, experiment):
        """CDN fronts respond but fail the SNI-less handshake."""
        hitlist = experiment.hitlist_scan
        responsive = len(hitlist.responsive_addresses("https"))
        tls_ok = len(hitlist.tls_addresses("https"))
        assert tls_ok < responsive / 2

    def test_ntp_https_mostly_succeeds(self, experiment):
        """End-user devices (FRITZ!) negotiate TLS without SNI."""
        ntp = experiment.ntp_scan
        responsive = len(ntp.responsive_addresses("https"))
        tls_ok = len(ntp.tls_addresses("https"))
        assert responsive > 0
        assert tls_ok > responsive / 2

    def test_certs_dedup_below_addresses(self, experiment):
        """Unique certs < responsive addresses (rotation double-counts)."""
        ntp = experiment.ntp_scan
        assert 0 < len(ntp.unique_fingerprints("https")) <= \
            len(ntp.tls_addresses("https"))


class TestTable3Shapes:
    @pytest.fixture(scope="class")
    def table3(self, experiment):
        return devicetypes.build_table3(experiment.ntp_scan,
                                        experiment.hitlist_scan)

    def test_fritz_dominates_ntp_http(self, table3):
        top = table3.http_ntp[0]
        assert "FRITZ!Box" in top.members or \
            top.representative == "FRITZ!Box"

    def test_fritz_underrepresented_in_hitlist(self, table3):
        ntp_fritz = table3.http_group_count("ntp", "FRITZ!Box")
        hitlist_fritz = table3.http_group_count("hitlist", "FRITZ!Box")
        assert ntp_fritz > 5 * max(hitlist_fritz, 1)

    def test_dlink_only_via_hitlist(self, table3):
        assert table3.http_group_count("ntp", "D-LINK") == 0
        assert table3.http_group_count("hitlist", "D-LINK") > 0

    def test_raspbian_mostly_via_ntp(self, table3):
        assert table3.ssh_ntp["Raspbian"] > table3.ssh_hitlist["Raspbian"]

    def test_freebsd_mostly_via_hitlist(self, table3):
        assert table3.ssh_hitlist["FreeBSD"] > table3.ssh_ntp["FreeBSD"]

    def test_castdevice_only_via_ntp(self, table3):
        assert table3.coap_ntp["castdevice"] > 0
        assert table3.coap_hitlist["castdevice"] == 0

    def test_underrepresented_devices_found(self, table3):
        findings = devicetypes.new_or_underrepresented(table3)
        assert "http:FRITZ!Box" in findings
        assert "coap:castdevice" in findings


class TestSecurityShapes:
    def test_headline_gap(self, experiment):
        """The 43.5% vs 28.4% claim: NTP-sourced hosts are less secure."""
        ntp, hitlist = security.security_gap(experiment.ntp_scan,
                                             experiment.hitlist_scan)
        assert ntp.total >= 5 and hitlist.total >= 5
        assert ntp.secure_share < hitlist.secure_share - 0.05

    def test_ssh_more_outdated_via_ntp(self, experiment):
        ntp = security.ssh_outdatedness("ntp", experiment.ntp_scan)
        hitlist = security.ssh_outdatedness("hl", experiment.hitlist_scan)
        assert ntp.outdated_share > hitlist.outdated_share

    def test_mqtt_access_control_gap(self, experiment):
        ntp = security.broker_access_control("ntp", experiment.ntp_scan,
                                             "mqtt")
        hitlist = security.broker_access_control("hl",
                                                 experiment.hitlist_scan,
                                                 "mqtt")
        # Only meaningful with a non-trivial broker sample; the
        # benchmark-scale run asserts this unconditionally.
        if ntp.total >= 8 and hitlist.total >= 8:
            assert ntp.access_control_share < hitlist.access_control_share


class TestAppendixShapes:
    def test_avm_tops_vendor_table(self, experiment):
        report = macs.analyze_dataset(experiment.ntp_dataset,
                                      experiment.world.oui)
        assert report.vendor_rows
        assert "AVM" in report.vendor_rows[0].vendor

    def test_eui64_minority(self, experiment):
        """Most collected addresses are privacy addresses, not EUI-64."""
        report = macs.analyze_dataset(experiment.ntp_dataset,
                                      experiment.world.oui)
        assert 0.02 < report.eui64_share < 0.6

    def test_more_ips_than_macs(self, experiment):
        """Dynamic prefixes: one MAC shows up under several addresses."""
        report = macs.analyze_dataset(experiment.ntp_dataset,
                                      experiment.world.oui)
        assert report.unique_bit_addresses > report.distinct_unique_macs

    def test_india_collects_most(self, experiment):
        counts = experiment.ntp_dataset.per_server_counts()
        assert counts["India"] == max(counts.values())

    def test_keyreuse_worse_via_ntp(self, experiment):
        ntp = keyreuse.analyze("ntp", experiment.ntp_scan,
                               experiment.world.asdb)
        hitlist = keyreuse.analyze("hl", experiment.hitlist_scan,
                                   experiment.world.asdb)
        if ntp.reused_key_count and hitlist.reused_key_count:
            assert ntp.addresses_per_key > hitlist.addresses_per_key
