"""Roundtrip tests for the JSONL persistence formats."""

import json

import pytest

from repro.core.collector import CollectedDataset
from repro.io import FormatError, load_dataset, load_results, save_dataset, save_results
from repro.ipv6 import parse
from repro.scan.result import (
    BrokerGrab,
    CoapGrab,
    HttpGrab,
    ScanResults,
    SshGrab,
    TlsObservation,
)


@pytest.fixture()
def dataset():
    data = CollectedDataset(label="test-campaign")
    data.record(parse("2001:db8::1"), 10.0, "Germany")
    data.record(parse("2001:db8::1"), 20.0, "India", requests=3)
    data.record(parse("2001:db8::2"), 15.0, "Germany")
    return data


@pytest.fixture()
def results():
    data = ScanResults(label="test-scan")
    data.targets_seen = 42
    data.add(HttpGrab(address=parse("2001:db8::1"), time=1.0, port=443,
                      ok=True, status=200, title="FRITZ!Box",
                      server="AVM",
                      tls=TlsObservation(ok=True, fingerprint=b"\x01\x02",
                                         subject="fritz.box",
                                         issuer="fritz.box",
                                         self_signed=True, expired=False)))
    data.add(HttpGrab(address=parse("2001:db8::2"), time=2.0, port=80,
                      ok=False))
    data.add(SshGrab(address=parse("2001:db8::3"), time=3.0, ok=True,
                     banner="SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u3",
                     software="OpenSSH_9.2p1", comment="Debian-2+deb12u3",
                     key_algorithm="ssh-ed25519", key_fingerprint=b"\xaa"))
    data.add(BrokerGrab(address=parse("2001:db8::4"), time=4.0, port=1883,
                        protocol="mqtt", ok=True, open_access=True,
                        detail="connack=0"))
    data.add(CoapGrab(address=parse("2001:db8::5"), time=5.0, ok=True,
                      resources=("/castDeviceSearch",)))
    return data


class TestDatasetRoundtrip:
    def test_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "dataset.jsonl"
        count = save_dataset(dataset, path)
        assert count >= 4  # header + servers + addresses
        loaded = load_dataset(path)
        assert loaded.label == "test-campaign"
        assert loaded.addresses == dataset.addresses
        assert loaded.total_requests == dataset.total_requests
        assert loaded.per_server_counts() == dataset.per_server_counts()
        original = dataset.observations[parse("2001:db8::1")]
        restored = loaded.observations[parse("2001:db8::1")]
        assert restored.first_seen == original.first_seen
        assert restored.requests == original.requests

    def test_file_is_line_json(self, dataset, tmp_path):
        path = tmp_path / "dataset.jsonl"
        save_dataset(dataset, path)
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_rejects_wrong_kind(self, results, tmp_path):
        path = tmp_path / "results.jsonl"
        save_results(results, path)
        with pytest.raises(FormatError):
            load_dataset(path)

    def test_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(FormatError):
            load_dataset(path)

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("this is not json\n")
        with pytest.raises(FormatError):
            load_dataset(path)


class TestResultsRoundtrip:
    def test_roundtrip(self, results, tmp_path):
        path = tmp_path / "results.jsonl"
        save_results(results, path)
        loaded = load_results(path)
        assert loaded.label == "test-scan"
        assert loaded.targets_seen == 42
        assert len(loaded.https) == 1
        assert len(loaded.http) == 1
        assert len(loaded.ssh) == 1
        assert len(loaded.mqtt) == 1
        assert len(loaded.coap) == 1

    def test_grab_fields_survive(self, results, tmp_path):
        path = tmp_path / "results.jsonl"
        save_results(results, path)
        loaded = load_results(path)
        https = loaded.https[0]
        assert https.title == "FRITZ!Box"
        assert https.tls.fingerprint == b"\x01\x02"
        assert https.tls.self_signed is True
        ssh = loaded.ssh[0]
        assert ssh.key_fingerprint == b"\xaa"
        assert ssh.comment == "Debian-2+deb12u3"
        coap = loaded.coap[0]
        assert coap.resources == ("/castDeviceSearch",)

    def test_analyses_work_on_loaded_results(self, results, tmp_path):
        from repro.analysis import devicetypes

        path = tmp_path / "results.jsonl"
        save_results(results, path)
        loaded = load_results(path)
        groups = devicetypes.http_title_groups(loaded)
        assert groups[0].representative == "FRITZ!Box"
        assert loaded.unique_fingerprints("ssh") == {b"\xaa"}

    def test_roundtrip_experiment_scan(self, experiment, tmp_path):
        """The real pipeline's output survives a save/load cycle."""
        path = tmp_path / "ntp_scan.jsonl"
        save_results(experiment.ntp_scan, path)
        loaded = load_results(path)
        for protocol in ("http", "https", "ssh", "coap"):
            assert loaded.responsive_addresses(protocol) == \
                experiment.ntp_scan.responsive_addresses(protocol)
            assert loaded.unique_fingerprints(protocol) == \
                experiment.ntp_scan.unique_fingerprints(protocol)


class TestCanonicalForm:
    """The byte-level guarantees the repro.store WAL's CRCs lean on."""

    def test_non_ascii_titles_roundtrip(self, tmp_path):
        from repro.io import save_results

        data = ScanResults(label="umlaut-scan")
        data.targets_seen = 1
        data.add(HttpGrab(address=parse("2001:db8::1"), time=1.0, port=80,
                          ok=True, status=200, title="FRITZ!Box — Köln ✓",
                          server="Heißgerät/1.0"))
        path = tmp_path / "results.jsonl"
        save_results(data, path)
        loaded = load_results(path)
        assert loaded.http[0].title == "FRITZ!Box — Köln ✓"
        assert loaded.http[0].server == "Heißgerät/1.0"
        # Canonical form stores raw unicode, not \u escapes: the bytes
        # the CRC covers are the bytes on disk.
        assert "Köln" in path.read_text(encoding="utf-8")
        assert "\\u" not in path.read_text(encoding="utf-8")

    def test_canonical_json_is_sorted_and_newline_free(self):
        from repro.io import to_canonical_json

        line = to_canonical_json({"b": 1, "a": "día\n二"})
        assert line == '{"a": "día\\n二", "b": 1}'
        assert "\n" not in line  # one record == one line, always

    def test_files_end_with_exactly_one_newline(self, results, tmp_path):
        from repro.io import save_results

        path = tmp_path / "results.jsonl"
        save_results(results, path)
        text = path.read_text(encoding="utf-8")
        assert text.endswith("\n") and not text.endswith("\n\n")

    def test_integers_beyond_2_53_are_exact(self):
        """Sequence numbers are Python ints end to end — no float hop
        (JavaScript-style 2^53 truncation) in the canonical form."""
        from repro.io import to_canonical_json

        big = 2**53 + 1
        line = to_canonical_json({"seq": big})
        assert json.loads(line)["seq"] == big
        assert str(big) in line
