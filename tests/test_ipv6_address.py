"""Unit tests for integer-backed IPv6 address primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ipv6 import address as addr

ADDRESSES = st.integers(min_value=0, max_value=addr.ADDRESS_SPACE - 1)
LENGTHS = st.integers(min_value=0, max_value=128)


class TestParseFormat:
    def test_parse_known_address(self):
        assert addr.parse("::1") == 1

    def test_parse_full_form(self):
        value = addr.parse("2001:0db8:0000:0000:0000:0000:0000:0001")
        assert value == addr.parse("2001:db8::1")

    def test_format_compresses(self):
        assert addr.format_address(addr.parse("2001:db8:0:0:0:0:0:1")) == \
            "2001:db8::1"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            addr.parse("not-an-address")

    def test_parse_rejects_ipv4(self):
        with pytest.raises(ValueError):
            addr.parse("192.0.2.1")

    @given(ADDRESSES)
    def test_roundtrip(self, value):
        assert addr.parse(addr.format_address(value)) == value


class TestPrefix:
    def test_prefix_48(self):
        value = addr.parse("2001:db8:1:2::5")
        assert addr.format_address(addr.prefix(value, 48)) == "2001:db8:1::"

    def test_prefix_zero_length(self):
        assert addr.prefix(addr.parse("ffff::"), 0) == 0

    def test_prefix_full_length_is_identity(self):
        value = addr.parse("2001:db8::42")
        assert addr.prefix(value, 128) == value

    def test_prefix_rejects_bad_length(self):
        with pytest.raises(ValueError):
            addr.prefix(0, 129)
        with pytest.raises(ValueError):
            addr.prefix(0, -1)

    @given(ADDRESSES, LENGTHS)
    def test_prefix_idempotent(self, value, length):
        once = addr.prefix(value, length)
        assert addr.prefix(once, length) == once

    @given(ADDRESSES, LENGTHS)
    def test_prefix_monotone(self, value, length):
        """A longer prefix refines, never contradicts, a shorter one."""
        longer = min(length + 8, 128)
        assert addr.prefix(addr.prefix(value, longer), length) == \
            addr.prefix(value, length)


class TestNetworkKey:
    def test_key_roundtrip(self):
        value = addr.parse("2001:db8:a:b::1")
        key = addr.network_key(value, 64)
        assert addr.from_network_key(key, 64) == addr.prefix(value, 64)

    def test_consecutive_networks_consecutive_keys(self):
        base = addr.parse("2001:db8::")
        step = 1 << (128 - 48)
        assert addr.network_key(base + step, 48) == \
            addr.network_key(base, 48) + 1

    @given(ADDRESSES)
    def test_same_48_same_key(self, value):
        sibling = addr.prefix(value, 48) | (value ^ 0xFF) & 0xFFFF
        assert addr.network_key(value, 48) == addr.network_key(sibling, 48)


class TestIid:
    def test_iid_extracts_low_half(self):
        value = addr.parse("2001:db8::dead:beef")
        assert addr.iid(value) == 0xDEADBEEF

    def test_with_iid_combines(self):
        prefix = addr.parse("2001:db8:1:2::")
        assert addr.with_iid(prefix, 0x42) == addr.parse("2001:db8:1:2::42")

    @given(ADDRESSES, st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_with_iid_roundtrip(self, prefix_value, iid_value):
        combined = addr.with_iid(prefix_value, iid_value)
        assert addr.iid(combined) == iid_value
        assert addr.prefix(combined, 64) == addr.prefix(prefix_value, 64)


class TestBitOpRoundTrips:
    """Property round-trips tying the bit-op primitives together."""

    @given(ADDRESSES, LENGTHS)
    def test_network_key_roundtrip(self, value, length):
        key = addr.network_key(value, length)
        assert addr.from_network_key(key, length) == addr.prefix(value, length)
        assert addr.network_key(addr.from_network_key(key, length),
                                length) == key

    @given(ADDRESSES, LENGTHS)
    def test_key_bounded_by_level(self, value, length):
        assert 0 <= addr.network_key(value, length) < (1 << length)

    @given(ADDRESSES)
    def test_prefix_iid_reassemble(self, value):
        """prefix/iid split and with_iid reassembly are inverses."""
        assert addr.with_iid(addr.prefix(value, 64), addr.iid(value)) == value

    @given(ADDRESSES, st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_with_iid_ignores_old_iid(self, value, iid_value):
        assert addr.with_iid(value, iid_value) == \
            addr.with_iid(addr.prefix(value, 64), iid_value)

    @given(ADDRESSES, LENGTHS)
    def test_contains_own_prefix(self, value, length):
        """Every address lies inside its own /length network."""
        assert addr.contains(addr.prefix(value, length), length, value)

    @given(ADDRESSES, LENGTHS)
    def test_contains_iff_same_key(self, value, length):
        other = value ^ 1  # flip the lowest bit
        same_net = addr.network_key(value, length) == \
            addr.network_key(other, length)
        assert addr.contains(addr.prefix(value, length), length,
                             other) == same_net

    @given(ADDRESSES, st.integers(min_value=0, max_value=120))
    def test_iter_subnets_consistent_with_contains(self, value, length):
        """All subnets enumerated by iter_subnets lie inside the parent."""
        base = addr.prefix(value, length)
        child = min(length + 3, 128)
        subnets = list(addr.iter_subnets(base, length, child))
        assert len(subnets) == 1 << (child - length)
        assert len(set(subnets)) == len(subnets)
        for subnet in subnets:
            assert addr.contains(base, length, subnet)
            assert addr.prefix(subnet, child) == subnet


class TestNetworks:
    def test_format_network(self):
        value = addr.parse("2001:db8:1:2::5")
        assert addr.format_network(value, 48) == "2001:db8:1::/48"

    def test_parse_network(self):
        base, length = addr.parse_network("2001:db8::/32")
        assert base == addr.parse("2001:db8::")
        assert length == 32

    def test_contains(self):
        base = addr.parse("2001:db8::")
        assert addr.contains(base, 32, addr.parse("2001:db8:ffff::1"))
        assert not addr.contains(base, 32, addr.parse("2001:db9::1"))

    def test_iter_subnets(self):
        base = addr.parse("2001:db8::")
        subnets = list(addr.iter_subnets(base, 46, 48))
        assert len(subnets) == 4
        assert subnets[0] == base
        assert addr.format_address(subnets[1]) == "2001:db8:1::"

    def test_iter_subnets_rejects_shorter(self):
        with pytest.raises(ValueError):
            list(addr.iter_subnets(0, 48, 32))

    def test_distinct_networks(self):
        values = [addr.parse("2001:db8::1"), addr.parse("2001:db8::2"),
                  addr.parse("2001:db9::1")]
        assert len(addr.distinct_networks(values, 48)) == 2
        assert len(addr.distinct_networks(values, 128)) == 3
