"""Unit tests for multi-level prefix aggregation (Table 1/5 machinery)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ipv6 import address as addr
from repro.ipv6.aggregation import (
    GroupedDensity,
    PrefixAggregator,
    address_overlap,
    overlap,
)


def _addr(net: int, host: int) -> int:
    return addr.parse("2001:db8::") + (net << 80) + host


class TestPrefixAggregator:
    def test_add_deduplicates(self):
        agg = PrefixAggregator()
        assert agg.add(_addr(0, 1)) is True
        assert agg.add(_addr(0, 1)) is False
        assert agg.address_count == 1

    def test_network_counts(self):
        agg = PrefixAggregator()
        agg.update([_addr(0, 1), _addr(0, 2), _addr(1, 1)])
        counts = agg.network_counts(48)
        assert sorted(counts.values()) == [1, 2]
        assert agg.network_count(48) == 2

    def test_summary_levels(self):
        agg = PrefixAggregator(levels=(48, 64))
        agg.update([_addr(0, 1), _addr(1, 1)])
        assert agg.summary() == {48: 2, 64: 2}

    def test_median_density(self):
        agg = PrefixAggregator()
        agg.update([_addr(0, host) for host in range(1, 6)])  # 5 in one /48
        agg.update([_addr(1, 1)])                              # 1 in another
        assert agg.median_density(48) == 3.0

    def test_median_density_empty(self):
        assert PrefixAggregator().median_density(48) == 0.0

    def test_mean_density(self):
        agg = PrefixAggregator()
        agg.update([_addr(0, 1), _addr(0, 2), _addr(1, 1)])
        assert agg.mean_density(48) == pytest.approx(1.5)

    def test_update_returns_new_count(self):
        agg = PrefixAggregator()
        assert agg.update([_addr(0, 1), _addr(0, 2), _addr(0, 1)]) == 2
        # Re-feeding known addresses adds nothing.
        assert agg.update([_addr(0, 1), _addr(0, 2)]) == 0
        assert agg.update([_addr(0, 2), _addr(1, 1)]) == 1
        assert agg.address_count == 3

    def test_update_counts_across_flushes(self):
        agg = PrefixAggregator(flush_threshold=2)
        values = [_addr(0, host) for host in range(5)]
        assert agg.update(values) == 5
        assert agg.update(values) == 0
        assert agg.address_count == 5

    def test_network_counts_cached_and_invalidated(self):
        agg = PrefixAggregator()
        agg.update([_addr(0, 1), _addr(0, 2)])
        first = agg.network_counts(48)
        assert agg._counts(48) is agg._counts(48)  # cache hit
        agg.add(_addr(1, 1))  # insert invalidates
        second = agg.network_counts(48)
        assert len(second) == len(first) + 1

    def test_network_counts_returns_copy(self):
        agg = PrefixAggregator()
        agg.update([_addr(0, 1)])
        counts = agg.network_counts(48)
        counts.clear()  # caller mutation must not corrupt the cache
        assert agg.network_count(48) == 1
        assert agg.network_counts(48)

    def test_column_property_is_sorted_unique(self):
        agg = PrefixAggregator(flush_threshold=2)
        values = [_addr(1, 1), _addr(0, 2), _addr(0, 1), _addr(1, 1)]
        agg.update(values)
        column = agg.column
        assert column.is_sorted_unique
        assert list(column) == sorted(set(values))
        assert agg.addresses == frozenset(values)

    def test_rejects_bad_flush_threshold(self):
        with pytest.raises(ValueError):
            PrefixAggregator(flush_threshold=0)

    @given(st.lists(st.integers(min_value=0, max_value=2**128 - 1),
                    max_size=50))
    def test_counts_consistent(self, values):
        agg = PrefixAggregator()
        agg.update(values)
        assert agg.address_count == len(set(values))
        # Coarser levels never have more networks than finer levels.
        assert agg.network_count(32) <= agg.network_count(48) \
            <= agg.network_count(64) <= agg.address_count


class TestOverlap:
    def test_network_overlap(self):
        left = [_addr(0, 1), _addr(1, 1)]
        right = [_addr(1, 2), _addr(2, 1)]
        assert overlap(left, right, 48) == 1

    def test_address_overlap(self):
        left = [_addr(0, 1), _addr(1, 1)]
        right = [_addr(1, 1)]
        assert address_overlap(left, right) == 1

    def test_disjoint(self):
        assert overlap([_addr(0, 1)], [_addr(1, 1)], 48) == 0


class TestGroupedDensity:
    def test_from_assignment(self):
        assignment = {_addr(0, 1): "a", _addr(0, 2): "a", _addr(1, 1): "b"}
        density = GroupedDensity.from_assignment(assignment)
        assert density.groups == 2
        assert density.median == 1.5
        assert density.mean == pytest.approx(1.5)

    def test_empty(self):
        density = GroupedDensity.from_assignment({})
        assert density.groups == 0
        assert density.median == 0.0
