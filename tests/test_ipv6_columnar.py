"""Columnar address engine: unit + equivalence suite.

The contract under test (DESIGN §10): every kernel of
:class:`repro.ipv6.columnar.AddressColumn` produces results identical
to the scalar reference functions (`iid.classify_iid`/`profile_scalar`,
`eui64.looks_like_eui64`, `address.prefix`/`network_key`, Python set
algebra) under **both** backends.  The ``columnar-parity`` CI job runs
this file twice — once with numpy installed, once in a venv without it
(where the numpy-parametrized cases skip and ``auto`` resolves to
``python``).
"""

import math
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipv6 import address as addr
from repro.ipv6 import eui64, iid
from repro.ipv6 import _columnar_tables as tables
from repro.ipv6.columnar import (
    BACKEND_ENV,
    AddressColumn,
    BackendUnavailable,
    available_backends,
    resolve_backend,
)

BACKENDS = available_backends()
HAS_NUMPY = "numpy" in BACKENDS

backend_param = pytest.mark.parametrize("backend", BACKENDS)

addresses_st = st.lists(
    st.integers(min_value=0, max_value=2**128 - 1), max_size=60)

# Weighted generator hitting every IID class, duplicates included.
structured_addresses_st = st.lists(
    st.one_of(
        st.integers(min_value=0, max_value=2**128 - 1),
        st.builds(lambda p, i: addr.with_iid(p << 64, i),
                  st.integers(min_value=0, max_value=2**64 - 1),
                  st.integers(min_value=0, max_value=0xFFFF)),
        st.builds(lambda p, m: addr.with_iid(p << 64, eui64.mac_to_iid(m)),
                  st.integers(min_value=0, max_value=2**64 - 1),
                  st.integers(min_value=0, max_value=2**48 - 1)),
        st.builds(lambda p, b: addr.with_iid(p << 64, b * 0x0101010101010101),
                  st.integers(min_value=0, max_value=2**64 - 1),
                  st.integers(min_value=0, max_value=255)),
    ),
    max_size=60)

levels_st = st.sampled_from((0, 1, 13, 32, 48, 56, 63, 64, 65, 96, 127, 128))


class TestConstruction:
    @backend_param
    def test_from_ints_round_trip(self, backend):
        values = [0, 1, 2**128 - 1, addr.parse("2001:db8::1")]
        column = AddressColumn.from_ints(values, backend=backend)
        assert list(column) == values
        assert len(column) == 4
        assert column[0] == 0 and column[-1] == values[-1]

    @backend_param
    def test_from_strings(self, backend):
        texts = ["2001:db8::1", "::", "fe80::1"]
        column = AddressColumn.from_strings(texts, backend=backend)
        assert list(column) == [addr.parse(text) for text in texts]

    def test_from_packed_round_trip(self):
        original = AddressColumn.from_ints([7, 9])
        again = AddressColumn.from_packed(original.tobytes())
        assert again == original

    def test_from_records_skips_and_parses(self):
        records = [
            {"t": "sighting", "addr": "2001:db8::1"},
            {"t": "admit"},
            {"addr": 42},
        ]
        column = AddressColumn.from_records(records)
        assert list(column) == [addr.parse("2001:db8::1"), 42]

    def test_coerce_passthrough(self):
        column = AddressColumn.from_ints([1])
        assert AddressColumn.coerce(column) is column
        assert list(AddressColumn.coerce(iter([3, 4]))) == [3, 4]

    def test_bad_buffer_length(self):
        with pytest.raises(ValueError):
            AddressColumn(b"\x00" * 15)

    def test_bad_values(self):
        with pytest.raises(ValueError):
            AddressColumn.from_ints([-1])
        with pytest.raises(ValueError):
            AddressColumn.from_ints([2**128])

    def test_repr_and_bool(self):
        assert not AddressColumn()
        column = AddressColumn.from_ints([1])
        assert column
        assert "n=1" in repr(column)


class TestBackendSelection:
    def test_available_includes_python(self):
        assert "python" in BACKENDS

    def test_env_forces_python(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python")
        assert AddressColumn().backend_name == "python"

    def test_env_numpy(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        if HAS_NUMPY:
            assert AddressColumn().backend_name == "numpy"
        else:
            with pytest.raises(BackendUnavailable):
                AddressColumn()

    def test_auto_prefers_numpy_when_present(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        expected = "numpy" if HAS_NUMPY else "python"
        assert resolve_backend().NAME == expected

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("fortran")

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python")
        if HAS_NUMPY:
            assert AddressColumn(backend="numpy").backend_name == "numpy"

    def test_with_backend(self):
        column = AddressColumn.from_ints([5], backend="python")
        assert column.with_backend("python").tobytes() == column.tobytes()


class TestEntropyTables:
    """Prove the lookup tables against the scalar entropy formula."""

    def test_partitions_cover_all_masks(self):
        assert len(tables.MASK_RUNS) == 128
        assert all(sum(runs) == 8 for runs in tables.MASK_RUNS)
        # All 22 partitions of 8 are reachable from some boundary mask.
        assert len(tables.PARTITION_ENTROPY) == 22

    def test_partition_entropy_matches_scalar_formula(self):
        for runs, entropy in tables.PARTITION_ENTROPY.items():
            # Realize the partition as a concrete byte string and feed
            # the scalar path; the float may differ by summation order
            # only, never enough to cross a class threshold.
            realized = b"".join(bytes([value] * count)
                                for value, count in enumerate(runs))
            scalar = iid.byte_entropy(realized)
            assert scalar == pytest.approx(entropy, abs=1e-12)
            assert tables.entropy_code(scalar) == tables.entropy_code(entropy)

    def test_distinct_count_rule_matches_table(self):
        """The pure-python kernel's d-rule == the full partition table."""
        for runs, code in tables.PARTITION_CODE.items():
            spread = len(runs)
            if spread > 5:
                predicted = tables.CODE_HIGH_ENTROPY
            elif spread < 3:
                predicted = tables.CODE_LOW_ENTROPY
            elif spread == 5 and max(runs) != 4:
                predicted = tables.CODE_HIGH_ENTROPY
            else:
                predicted = tables.CODE_MEDIUM_ENTROPY
            assert predicted == code, runs


class TestScalarEquivalence:
    """Columnar kernels == scalar loops, property by property."""

    @backend_param
    @given(values=structured_addresses_st)
    def test_class_counts(self, backend, values):
        column = AddressColumn.from_ints(values, backend=backend)
        expected = Counter(iid.classify_iid(value) for value in values)
        got = {label: count
               for label, count in column.class_counts().items() if count}
        assert got == dict(expected)

    @backend_param
    @given(values=structured_addresses_st)
    def test_profile_matches_scalar(self, backend, values):
        column = AddressColumn.from_ints(values, backend=backend)
        assert iid.profile(column).as_dict() == \
            iid.profile_scalar(values).as_dict()

    @backend_param
    @given(values=addresses_st, level=levels_st)
    def test_network_key_counts(self, backend, values, level):
        column = AddressColumn.from_ints(values, backend=backend)
        expected = Counter(addr.network_key(value, level) for value in values)
        assert column.network_key_counts(level) == dict(expected)
        assert column.distinct_network_count(level) == len(expected)
        assert column.distinct_network_keys(level) == set(expected)

    @backend_param
    @given(values=addresses_st, level=levels_st)
    def test_network_key_counts_ordered(self, backend, values, level):
        column = AddressColumn.from_ints(values, backend=backend)
        ordered = column.network_key_counts_ordered(level)
        assert dict(ordered) == column.network_key_counts(level)
        first_seen = list(dict.fromkeys(
            addr.network_key(value, level) for value in values))
        assert [key for key, _ in ordered] == first_seen

    @backend_param
    @given(values=addresses_st, level=levels_st)
    def test_truncate(self, backend, values, level):
        column = AddressColumn.from_ints(values, backend=backend)
        assert list(column.truncate(level)) == \
            [addr.prefix(value, level) for value in values]

    @backend_param
    @given(values=addresses_st)
    def test_sort_dedup(self, backend, values):
        column = AddressColumn.from_ints(values, backend=backend)
        assert list(column.sort()) == sorted(values)
        deduped = column.dedup()
        assert list(deduped) == sorted(set(values))
        assert deduped.is_sorted_unique
        assert deduped.dedup() is deduped

    @backend_param
    @given(left=addresses_st, right=addresses_st)
    def test_set_algebra(self, backend, left, right):
        lcol = AddressColumn.from_ints(left, backend=backend)
        rcol = AddressColumn.from_ints(right, backend=backend)
        assert list(lcol.intersect(rcol)) == sorted(set(left) & set(right))
        assert list(lcol.union(rcol)) == sorted(set(left) | set(right))
        assert lcol.intersection_count(rcol) == len(set(left) & set(right))

    @backend_param
    @given(values=structured_addresses_st)
    def test_eui64_selection(self, backend, values):
        column = AddressColumn.from_ints(values, backend=backend)
        expected = [value for value in values
                    if eui64.looks_like_eui64(value & addr.IID_MASK)]
        assert list(column.eui64()) == expected
        assert column.eui64_count() == len(expected)
        found = eui64.scan_addresses(column)
        assert [(f.address, f.mac) for f in found] == \
            [(f.address, f.mac) for f in eui64.scan_addresses(values)]

    @backend_param
    @given(values=structured_addresses_st)
    def test_entropy_histogram(self, backend, values):
        column = AddressColumn.from_ints(values, backend=backend)
        histogram = column.iid_entropy_histogram()
        assert sum(histogram.values()) == len(values)
        expected = Counter(iid.byte_entropy(iid.iid_bytes(value))
                           for value in values)
        # Keys may differ from the scalar floats by summation order
        # only; match within 1e-9 and require identical counts.
        assert len(histogram) == len(expected)
        for key, count in expected.items():
            matches = [k for k in histogram if math.isclose(
                k, key, rel_tol=0.0, abs_tol=1e-9)]
            assert len(matches) == 1
            assert histogram[matches[0]] == count

    @backend_param
    @given(values=addresses_st)
    def test_nybble_counts_and_entropy(self, backend, values):
        column = AddressColumn.from_ints(values, backend=backend)
        counts = column.nybble_value_counts()
        manual = [[0] * 16 for _ in range(32)]
        for value in values:
            for position in range(32):
                nybble = (value >> (4 * (31 - position))) & 0xF
                manual[position][nybble] += 1
        assert counts == manual
        entropies = column.nybble_entropy()
        assert len(entropies) == 32
        if values:
            assert all(0.0 <= entropy <= 4.0 for entropy in entropies)

    @backend_param
    @given(values=addresses_st, probe=st.integers(min_value=0,
                                                  max_value=2**128 - 1))
    def test_contains(self, backend, values, probe):
        column = AddressColumn.from_ints(values, backend=backend)
        assert column.contains(probe) == (probe in set(values))
        assert column.dedup().contains(probe) == (probe in set(values))

    @backend_param
    @given(values=addresses_st)
    def test_distinct_networks_duck_typing(self, backend, values):
        column = AddressColumn.from_ints(values, backend=backend)
        for level in (32, 48, 64, 128):
            assert addr.distinct_networks(column, level) == \
                addr.distinct_networks(values, level)


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy backend unavailable")
class TestBackendParity:
    """python and numpy backends agree byte-for-byte."""

    @given(values=structured_addresses_st, level=levels_st)
    @settings(max_examples=50)
    def test_all_kernels_agree(self, values, level):
        py = AddressColumn.from_ints(values, backend="python")
        np_ = AddressColumn.from_ints(values, backend="numpy")
        assert py.class_counts() == np_.class_counts()
        assert py.iid_entropy_histogram() == np_.iid_entropy_histogram()
        assert py.nybble_value_counts() == np_.nybble_value_counts()
        assert py.network_key_counts(level) == np_.network_key_counts(level)
        assert py.network_key_counts_ordered(level) == \
            np_.network_key_counts_ordered(level)
        assert py.truncate(level).tobytes() == np_.truncate(level).tobytes()
        assert py.sort().tobytes() == np_.sort().tobytes()
        assert py.dedup().tobytes() == np_.dedup().tobytes()
        assert py.eui64().tobytes() == np_.eui64().tobytes()

    @given(left=addresses_st, right=addresses_st)
    @settings(max_examples=50)
    def test_set_algebra_agrees(self, left, right):
        lpy = AddressColumn.from_ints(left, backend="python")
        rpy = AddressColumn.from_ints(right, backend="python")
        lnp = AddressColumn.from_ints(left, backend="numpy")
        rnp = AddressColumn.from_ints(right, backend="numpy")
        assert lpy.intersect(rpy).tobytes() == lnp.intersect(rnp).tobytes()
        assert lpy.union(rpy).tobytes() == lnp.union(rnp).tobytes()
