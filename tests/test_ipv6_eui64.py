"""Unit tests for EUI-64 / MAC embedding (Appendix B machinery)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ipv6 import address as addr
from repro.ipv6 import eui64

MACS = st.integers(min_value=0, max_value=(1 << 48) - 1)


class TestMacToIid:
    def test_known_vector(self):
        # RFC 4291 App. A example: 34-56-78-9A-BC-DE -> 3656:78ff:fe9a:bcde.
        iid = eui64.mac_to_iid(0x3456789ABCDE)
        assert iid == 0x365678FFFE9ABCDE
        assert (iid >> 24) & 0xFFFF == eui64.EUI64_MARKER
        # U/L bit flipped: 0x34 -> 0x36.
        assert (iid >> 56) == 0x36

    def test_marker_present(self):
        assert eui64.looks_like_eui64(eui64.mac_to_iid(0x0024FE123456))

    def test_rejects_oversized_mac(self):
        with pytest.raises(ValueError):
            eui64.mac_to_iid(1 << 48)
        with pytest.raises(ValueError):
            eui64.mac_to_iid(-1)

    @given(MACS)
    def test_roundtrip(self, mac):
        assert eui64.iid_to_mac(eui64.mac_to_iid(mac)) == mac

    @given(MACS)
    def test_universal_bit_flips(self, mac):
        iid = eui64.mac_to_iid(mac)
        # The IID's seventh bit is the inverse of the MAC's U/L bit.
        assert ((iid >> 56) & eui64.UL_BIT) != ((mac >> 40) & eui64.UL_BIT)


class TestExtraction:
    def test_extract_from_full_address(self):
        mac = 0xB827EB0A0B0C
        value = addr.with_iid(addr.parse("2001:db8:1::"), eui64.mac_to_iid(mac))
        assert eui64.extract_mac(value) == mac

    def test_extract_none_for_privacy(self):
        assert eui64.extract_mac(addr.parse("2001:db8::8d4f:19c2:77ab:e03d")) \
            is None

    def test_iid_to_mac_rejects_non_eui64(self):
        with pytest.raises(ValueError):
            eui64.iid_to_mac(0x123456789)

    def test_scan_addresses(self):
        mac = 0x0024FE111111
        values = [
            addr.with_iid(addr.parse("2001:db8::"), eui64.mac_to_iid(mac)),
            addr.parse("2001:db8::1"),
        ]
        found = eui64.scan_addresses(values)
        assert len(found) == 1
        assert found[0].mac == mac
        assert found[0].oui == 0x0024FE


class TestBits:
    def test_universal_detection(self):
        assert eui64.is_universal(0x0024FE123456)
        assert not eui64.is_universal(0x0224FE123456)

    def test_multicast_detection(self):
        assert eui64.is_multicast(0x0124FE123456)
        assert not eui64.is_multicast(0x0024FE123456)

    def test_oui_extraction(self):
        assert eui64.oui_of(0xB827EB123456) == 0xB827EB


class TestFormatting:
    def test_format(self):
        assert eui64.format_mac(0x0024FE123456) == "00:24:fe:12:34:56"

    def test_parse_colons(self):
        assert eui64.parse_mac("b8:27:eb:12:34:56") == 0xB827EB123456

    def test_parse_dashes(self):
        assert eui64.parse_mac("B8-27-EB-12-34-56") == 0xB827EB123456

    def test_parse_rejects_short(self):
        with pytest.raises(ValueError):
            eui64.parse_mac("b8:27:eb")

    @given(MACS)
    def test_format_parse_roundtrip(self, mac):
        assert eui64.parse_mac(eui64.format_mac(mac)) == mac
