"""Unit tests for IID classification and entropy (Figure 1 machinery)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ipv6 import address as addr
from repro.ipv6 import eui64, iid


class TestByteEntropy:
    def test_zero_for_uniform_bytes(self):
        assert iid.byte_entropy(b"\x00" * 8) == 0.0

    def test_empty_is_zero(self):
        assert iid.byte_entropy(b"") == 0.0

    def test_max_for_distinct_bytes(self):
        assert iid.byte_entropy(bytes(range(8))) == pytest.approx(3.0)

    def test_half_split(self):
        assert iid.byte_entropy(b"\x00\x00\x00\x00\xff\xff\xff\xff") == \
            pytest.approx(1.0)

    @given(st.binary(min_size=1, max_size=16))
    def test_bounds(self, data):
        entropy = iid.byte_entropy(data)
        assert 0.0 <= entropy <= math.log2(len(data)) + 1e-9


class TestClassify:
    def test_zero_iid(self):
        assert iid.classify_iid(addr.parse("2001:db8::")) == "zero"

    def test_low_byte(self):
        assert iid.classify_iid(addr.parse("2001:db8::7f")) == "low-byte"

    def test_low_two_bytes(self):
        assert iid.classify_iid(addr.parse("2001:db8::1234")) == "low-two-bytes"

    def test_boundary_one_byte(self):
        assert iid.classify_iid(0xFF) == "low-byte"
        assert iid.classify_iid(0x100) == "low-two-bytes"

    def test_boundary_two_bytes(self):
        assert iid.classify_iid(0xFFFF) == "low-two-bytes"

    def test_eui64(self):
        value = addr.with_iid(addr.parse("2001:db8::"),
                              eui64.mac_to_iid(0xB827EB123456))
        assert iid.classify_iid(value) == "eui64"

    def test_privacy_address_high_entropy(self):
        value = addr.parse("2001:db8::8d4f:19c2:77ab:e03d")
        assert iid.classify_iid(value) == "high-entropy"

    def test_repeated_bytes_low_entropy(self):
        # IID aa:aa:aa:aa:aa:aa:aa:aa -> single distinct byte.
        assert iid.classify_iid(0xAAAAAAAAAAAAAAAA) == "low-entropy"

    def test_classes_cover_everything(self):
        for value in [0, 1, 0x1000, 0xB827EBFFFE123456,
                      0x1111111122222222, 0x8D4F19C277ABE03D]:
            assert iid.classify_iid(value) in iid.CLASSES

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_total_function(self, identifier):
        assert iid.classify_iid(identifier) in iid.CLASSES


class TestProfile:
    def test_profile_counts_and_shares(self):
        values = [
            addr.parse("2001:db8::"),        # zero
            addr.parse("2001:db8::1"),       # low-byte
            addr.parse("2001:db8::2"),       # low-byte
            addr.parse("2001:db8::1234"),    # low-two-bytes
        ]
        profile = iid.profile(values)
        assert profile.total == 4
        assert profile.share("low-byte") == 0.5
        assert profile.structured_share == 1.0
        assert profile.high_entropy_share == 0.0

    def test_empty_profile(self):
        profile = iid.profile([])
        assert profile.total == 0
        assert profile.share("zero") == 0.0
        assert profile.structured_share == 0.0

    def test_as_dict_sums_to_one(self):
        values = [addr.parse(f"2001:db8::{index:x}") for index in range(1, 40)]
        profile = iid.profile(values)
        assert sum(profile.as_dict().values()) == pytest.approx(1.0)
