"""Unit tests for the OUI vendor registry."""

import pytest

from repro.ipv6 import eui64
from repro.ipv6.oui import (
    LOCAL_OUI,
    UNLISTED_OUI,
    OuiRegistry,
    Vendor,
    default_registry,
)


@pytest.fixture(scope="module")
def registry():
    return default_registry()


class TestDefaultRegistry:
    def test_known_vendor_resolves(self, registry):
        vendor = registry.lookup(0xB827EB)
        assert vendor is not None
        assert vendor.name == "Raspberry Pi Foundation"

    def test_unlisted_oui_is_absent(self, registry):
        assert registry.lookup(UNLISTED_OUI) is None
        assert not registry.is_listed(UNLISTED_OUI)

    def test_local_oui_is_absent(self, registry):
        assert registry.lookup(LOCAL_OUI) is None

    def test_local_oui_has_local_bit(self):
        assert (LOCAL_OUI >> 16) & 0x02

    def test_lookup_mac_uses_oui(self, registry):
        assert registry.lookup_mac(0xB827EB000001).name == \
            "Raspberry Pi Foundation"

    def test_vendor_named(self, registry):
        vendor = registry.vendor_named("Sonos, Inc.")
        assert 0x000E58 in vendor.ouis

    def test_vendor_named_missing_raises(self, registry):
        with pytest.raises(KeyError):
            registry.vendor_named("ACME Corp")

    def test_paper_vendors_present(self, registry):
        for name in [
            "AVM Audiovisuelles Marketing und Computersysteme GmbH",
            "AVM GmbH",
            "Amazon Technologies Inc.",
            "Samsung Electronics Co.,Ltd",
            "Sonos, Inc.",
            "vivo Mobile Communication Co., Ltd.",
        ]:
            registry.vendor_named(name)

    def test_no_multicast_ouis(self, registry):
        """Registry OUIs must be unicast and universally administered."""
        for vendor in registry.vendors:
            for oui in vendor.ouis:
                top_byte = oui >> 16
                assert not top_byte & eui64.IG_BIT
                assert not top_byte & eui64.UL_BIT

    def test_len_counts_ouis(self, registry):
        assert len(registry) == sum(len(v.ouis) for v in registry.vendors)


class TestConstruction:
    def test_duplicate_oui_rejected(self):
        with pytest.raises(ValueError):
            OuiRegistry([
                Vendor("A", (0x111111,)),
                Vendor("B", (0x111111,)),
            ])
