"""Unit tests for the virtual clock and event scheduler."""

import pytest

from repro.net.clock import DAY, EventScheduler, HOUR, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(100.0).now() == 100.0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance(5.0)
        clock.advance(2.5)
        assert clock.now() == 7.5

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_advance_to(self):
        clock = VirtualClock()
        clock.advance_to(42.0)
        assert clock.now() == 42.0

    def test_advance_to_rejects_past(self):
        clock = VirtualClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_duration_constants(self):
        assert DAY == 24 * HOUR


class TestEventScheduler:
    def test_events_run_in_order(self):
        clock = VirtualClock()
        scheduler = EventScheduler(clock)
        order = []
        scheduler.call_at(3.0, lambda: order.append("c"))
        scheduler.call_at(1.0, lambda: order.append("a"))
        scheduler.call_at(2.0, lambda: order.append("b"))
        executed = scheduler.run_until(10.0)
        assert executed == 3
        assert order == ["a", "b", "c"]
        assert clock.now() == 10.0

    def test_same_time_fifo(self):
        scheduler = EventScheduler(VirtualClock())
        order = []
        scheduler.call_at(1.0, lambda: order.append(1))
        scheduler.call_at(1.0, lambda: order.append(2))
        scheduler.run_until(1.0)
        assert order == [1, 2]

    def test_call_later(self):
        clock = VirtualClock(5.0)
        scheduler = EventScheduler(clock)
        fired = []
        scheduler.call_later(2.0, lambda: fired.append(clock.now()))
        scheduler.run_until(10.0)
        assert fired == [7.0]

    def test_call_later_rejects_negative(self):
        with pytest.raises(ValueError):
            EventScheduler(VirtualClock()).call_later(-1, lambda: None)

    def test_call_at_rejects_past(self):
        clock = VirtualClock(5.0)
        with pytest.raises(ValueError):
            EventScheduler(clock).call_at(1.0, lambda: None)

    def test_run_until_leaves_future_events(self):
        scheduler = EventScheduler(VirtualClock())
        fired = []
        scheduler.call_at(1.0, lambda: fired.append("early"))
        scheduler.call_at(5.0, lambda: fired.append("late"))
        scheduler.run_until(2.0)
        assert fired == ["early"]
        assert scheduler.pending == 1
        scheduler.run_until(5.0)
        assert fired == ["early", "late"]

    def test_cancel(self):
        scheduler = EventScheduler(VirtualClock())
        fired = []
        event = scheduler.call_at(1.0, lambda: fired.append("x"))
        scheduler.cancel(event)
        scheduler.run_until(2.0)
        assert fired == []
        assert scheduler.pending == 0

    def test_events_scheduled_during_run(self):
        clock = VirtualClock()
        scheduler = EventScheduler(clock)
        fired = []

        def chain():
            fired.append(clock.now())
            if len(fired) < 3:
                scheduler.call_later(1.0, chain)

        scheduler.call_at(1.0, chain)
        scheduler.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_run_all_guard(self):
        scheduler = EventScheduler(VirtualClock())

        def forever():
            scheduler.call_later(1.0, forever)

        scheduler.call_later(1.0, forever)
        with pytest.raises(RuntimeError):
            scheduler.run_all(limit=100)
