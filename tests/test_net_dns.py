"""Tests for the DNS zone and its DDNS integration with churn/hitlist."""

import pytest

from repro.ipv6 import parse
from repro.net.dns import DnsZone
from repro.world.hitlist import HitlistConfig, build_hitlist
from repro.world.population import build_world
from tests.conftest import small_world_config

A1 = parse("2001:db8::1")
A2 = parse("2001:db8::2")


class TestZone:
    def test_register_and_resolve(self):
        zone = DnsZone()
        zone.register("host.sim", A1)
        assert zone.resolve("host.sim") == A1
        assert zone.resolve("nope.sim") is None
        assert "host.sim" in zone
        assert len(zone) == 1

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            DnsZone().register("", A1)

    def test_update_keeps_history(self):
        zone = DnsZone()
        zone.register("host.sim", A1, now=0.0)
        zone.update("host.sim", A2, now=100.0)
        assert zone.resolve("host.sim") == A2
        assert zone.resolve_stale("host.sim") == A1
        assert zone.record("host.sim").updated_at == 100.0

    def test_update_unknown_raises(self):
        with pytest.raises(KeyError):
            DnsZone().update("nope.sim", A1)

    def test_noop_update_keeps_history_clean(self):
        zone = DnsZone()
        zone.register("host.sim", A1)
        zone.update("host.sim", A1)
        assert zone.record("host.sim").previous is None
        assert zone.resolve_stale("host.sim") == A1

    def test_reregister_behaves_like_update(self):
        zone = DnsZone()
        zone.register("host.sim", A1)
        zone.register("host.sim", A2)
        assert zone.resolve("host.sim") == A2
        assert zone.resolve_stale("host.sim") == A1


class TestWorldIntegration:
    def test_dns_named_devices_have_records(self, world):
        for device in world.dns_named():
            name = device.labels.get("dns_name")
            assert name is not None
            assert world.dns.resolve(name) == device.address

    def test_ddns_updates_on_churn(self):
        world = build_world(small_world_config())
        # Find a DNS-named device on a *dynamic* premises.
        target = None
        for site in world.premises:
            if site.rotation_rate == 0:
                continue
            for device in site.devices:
                if "dns_name" in device.labels:
                    target = device
                    break
            if target:
                break
        if target is None:
            pytest.skip("no dynamic DNS-named device at this seed")
        name = target.labels["dns_name"]
        old = target.address
        for _ in range(20):
            world.churn.step_day()
            if target.address != old:
                break
        assert target.address != old
        assert world.dns.resolve(name) == target.address
        assert world.churn.ddns_updates > 0

    def test_hitlist_contains_stale_ddns_targets(self):
        """With heavy staleness, some list entries are dead previous
        addresses — real hitlists carry these too."""
        world = build_world(small_world_config())
        for _ in range(10):
            world.churn.step_day()
        stale_list = build_hitlist(
            world, HitlistConfig(ddns_staleness=1.0, routers_per_as=0,
                                 tga_per_seed=0))
        fresh_list = build_hitlist(
            world, HitlistConfig(ddns_staleness=0.0, routers_per_as=0,
                                 tga_per_seed=0))
        assert stale_list.full != fresh_list.full
        # Stale entries are less often live.
        assert stale_list.public_size <= fresh_list.public_size
