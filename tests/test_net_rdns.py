"""Tests for the reverse-DNS registry and its detection signal."""

import pytest

from repro.core.actors import covert_profile, research_profile
from repro.net.rdns import ReverseDns


class TestRegistry:
    def test_register_and_lookup(self):
        rdns = ReverseDns()
        rdns.register(42, "scanner-1.example.edu")
        assert rdns.lookup(42) == "scanner-1.example.edu"
        assert rdns.lookup(43) is None

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ReverseDns().register(1, "")

    def test_register_range_interpolates(self):
        rdns = ReverseDns()
        rdns.register_range([10, 11, 12], "probe-{index}.sim")
        assert rdns.lookup(10) == "probe-0.sim"
        assert rdns.lookup(12) == "probe-2.sim"
        assert len(rdns) == 3

    def test_overwrite(self):
        rdns = ReverseDns()
        rdns.register(1, "old.sim")
        rdns.register(1, "new.sim")
        assert rdns.lookup(1) == "new.sim"


class TestResearchIdentification:
    @pytest.mark.parametrize("name,expected", [
        ("ipv6-research-scanner-0.gt.example.edu", True),
        ("measurement-probe.uni.example", True),
        ("survey.lab.example", True),
        ("vps-4821.cloud.example", False),
    ])
    def test_markers(self, name, expected):
        rdns = ReverseDns()
        rdns.register(1, name)
        assert rdns.identifies_research(1) is expected

    def test_nxdomain_not_research(self):
        assert ReverseDns().identifies_research(1) is False


class TestActorProfiles:
    def test_research_profile_publishes_rdns(self):
        assert research_profile().rdns_pattern is not None
        assert "research" in research_profile().rdns_pattern

    def test_covert_profile_publishes_nothing(self):
        assert covert_profile().rdns_pattern is None


class TestDetectorIntegration:
    def test_rdns_strengthens_verdicts(self, fresh_world):
        """With rDNS wired in, the research actor is identified by its
        PTR records and the covert actor by their absence."""
        from repro.core.actors import NtpSourcingActor
        from repro.core.campaign import CampaignConfig, CollectionCampaign
        from repro.core.detection import ActorDetector
        from repro.core.telescope import Telescope
        from repro.net.clock import DAY, EventScheduler

        world = fresh_world
        campaign = CollectionCampaign(world, CampaignConfig(days=1))
        scheduler = EventScheduler(world.clock)
        research_as = next(s for s in world.asdb.systems
                           if s.category == "Educational/Research")
        clouds = [s for s in world.asdb.systems
                  if s.name.startswith("HyperCloud")]
        NtpSourcingActor(
            world, campaign.pool, scheduler, research_profile(),
            server_base=world.allocate_prefix64(clouds[0].number),
            scanner_base=world.allocate_prefix64(research_as.number),
            zones=["us"], seed=1)
        NtpSourcingActor(
            world, campaign.pool, scheduler, covert_profile(),
            server_base=world.allocate_prefix64(clouds[1].number),
            scanner_base=world.allocate_prefix64(clouds[2].number),
            zones=["us"], seed=2)
        telescope = Telescope(world.network)
        for _ in range(5):
            telescope.sweep(campaign.pool)
            scheduler.run_until(world.clock.now() + DAY)
        scheduler.run_until(world.clock.now() + 4 * DAY)

        detector = ActorDetector(telescope, world.asdb, rdns=world.rdns)
        verdicts = {v.kind: v for v in detector.report()}
        assert set(verdicts) == {"research", "covert"}
        research = verdicts["research"]
        assert research.observation.source_rdns
        assert any("reverse DNS" in reason for reason in research.reasons)
        covert = verdicts["covert"]
        assert not covert.observation.source_rdns
        assert any("no reverse DNS" in reason for reason in covert.reasons)
