"""Unit tests for the simulated network fabric."""

import random

import pytest

from repro.ipv6 import parse
from repro.net.packet import Datagram, Transport
from repro.net.simnet import Network, SimpleSession

SRC = parse("2001:db8::1")
DST = parse("2001:db8::2")


class _EchoService:
    def accept(self, peer, peer_port):
        return SimpleSession(respond=lambda data: b"echo:" + data)


class TestHosts:
    def test_add_host_idempotent(self, network):
        first = network.add_host(DST)
        second = network.add_host(DST)
        assert first is second
        assert network.host_count == 1

    def test_remove_host(self, network):
        network.add_host(DST)
        network.remove_host(DST)
        assert network.host(DST) is None

    def test_move_host_keeps_services(self, network):
        host = network.add_host(DST)
        host.bind_udp(99, lambda datagram: b"pong")
        network.move_host(DST, SRC)
        assert network.host(DST) is None
        assert network.udp_request(parse("2001:db8::9"), SRC, 99, b"ping") == \
            b"pong"

    def test_move_missing_host_raises(self, network):
        with pytest.raises(KeyError):
            network.move_host(DST, SRC)

    def test_double_bind_rejected(self, network):
        host = network.add_host(DST)
        host.bind_udp(1, lambda d: None)
        with pytest.raises(ValueError):
            host.bind_udp(1, lambda d: None)


class TestUdp:
    def test_request_response(self, network):
        network.add_host(DST).bind_udp(53, lambda d: b"answer:" + d.payload)
        assert network.udp_request(SRC, DST, 53, b"q") == b"answer:q"

    def test_unbound_port_silent(self, network):
        network.add_host(DST)
        assert network.udp_request(SRC, DST, 53, b"q") is None

    def test_missing_host_silent(self, network):
        assert network.udp_request(SRC, DST, 53, b"q") is None

    def test_unreachable_host_silent(self, network):
        network.add_host(DST, reachable=False).bind_udp(53, lambda d: b"x")
        assert network.udp_request(SRC, DST, 53, b"q") is None

    def test_handler_may_decline(self, network):
        network.add_host(DST).bind_udp(53, lambda d: None)
        assert network.udp_request(SRC, DST, 53, b"q") is None

    def test_reply_swaps_endpoints(self):
        datagram = Datagram(src=SRC, src_port=1000, dst=DST, dst_port=53,
                            payload=b"q")
        reply = datagram.reply(b"a")
        assert (reply.src, reply.src_port) == (DST, 53)
        assert (reply.dst, reply.dst_port) == (SRC, 1000)


class TestTcp:
    def test_connect_and_exchange(self, network):
        network.add_host(DST).bind_tcp(80, _EchoService())
        stream = network.tcp_connect(SRC, DST, 80)
        assert stream is not None
        assert stream.write(b"hello") == b"echo:hello"

    def test_greeting(self, network):
        class BannerService:
            def accept(self, peer, peer_port):
                return SimpleSession(respond=lambda d: None, banner=b"HELLO\n")

        network.add_host(DST).bind_tcp(22, BannerService())
        stream = network.tcp_connect(SRC, DST, 22)
        assert stream.read_greeting() == b"HELLO\n"
        assert stream.read_greeting() == b""  # consumed

    def test_connect_refused_when_unbound(self, network):
        network.add_host(DST)
        assert network.tcp_connect(SRC, DST, 80) is None

    def test_connect_refused_when_unreachable(self, network):
        network.add_host(DST, reachable=False).bind_tcp(80, _EchoService())
        assert network.tcp_connect(SRC, DST, 80) is None

    def test_closed_stream_rejects_writes(self, network):
        class OneShot:
            def accept(self, peer, peer_port):
                session = SimpleSession(respond=lambda d: b"bye")
                original = session.on_data

                def respond_and_close(data):
                    session.closed = True
                    return original(data)

                session.on_data = respond_and_close
                return session

        network.add_host(DST).bind_tcp(80, OneShot())
        stream = network.tcp_connect(SRC, DST, 80)
        assert stream.write(b"x") == b"bye"
        with pytest.raises(ConnectionResetError):
            stream.write(b"y")


class TestTaps:
    def test_tap_sees_udp_roundtrip(self, network):
        records = []
        network.add_tap(records.append)
        network.add_host(DST).bind_udp(53, lambda d: b"a")
        network.udp_request(SRC, DST, 53, b"q")
        assert len(records) == 2
        assert records[0].transport is Transport.UDP
        assert records[0].dst == DST
        assert records[1].src == DST  # the response

    def test_tap_sees_syn(self, network):
        records = []
        network.add_tap(records.append)
        network.tcp_connect(SRC, DST, 443)  # refused, but attempted
        assert len(records) == 1
        assert records[0].syn is True
        assert records[0].dst_port == 443

    def test_remove_tap(self, network):
        records = []
        network.add_tap(records.append)
        network.remove_tap(records.append.__self__.append
                           if False else records.append)
        network.udp_request(SRC, DST, 53, b"q")
        assert records == []


class TestLoss:
    def test_full_reliability_by_default(self, network):
        network.add_host(DST).bind_udp(53, lambda d: b"a")
        assert all(network.udp_request(SRC, DST, 53, b"q") == b"a"
                   for _ in range(50))

    def test_loss_drops_some(self):
        lossy = Network(loss_rate=0.5, rng=random.Random(1))
        lossy.add_host(DST).bind_udp(53, lambda d: b"a")
        outcomes = [lossy.udp_request(SRC, DST, 53, b"q") for _ in range(100)]
        assert any(outcome is None for outcome in outcomes)
        assert any(outcome == b"a" for outcome in outcomes)

    def test_invalid_loss_rate(self):
        with pytest.raises(ValueError):
            Network(loss_rate=1.5)


class TestEphemeralPorts:
    def test_ports_in_dynamic_range(self, network):
        for _ in range(10):
            assert 49152 <= network.ephemeral_port() <= 65535

    def test_ports_wrap(self, network):
        network._ephemeral = 65535
        assert network.ephemeral_port() == 65535
        assert network.ephemeral_port() == 49152
