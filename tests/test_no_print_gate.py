"""Observability gate: no ``print(`` inside src/repro outside the CLI.

Runtime code reports through the metrics registry and run reports, not
stdout.  The only modules allowed to print are the CLI (``cli.py``) and
the rendering layer (``report/``).  CI runs this test in the lint job,
so a stray debugging print fails fast.

The check is AST-based (calls to the ``print`` builtin), so docstring
examples and comments do not trip it.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Paths (relative to src/repro) allowed to call print().
ALLOWED = ("cli.py", "report/")


def _print_calls(path: Path):
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"):
            yield node.lineno


def test_no_print_outside_cli_and_report():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        relative = path.relative_to(SRC).as_posix()
        if relative in ALLOWED or any(
                relative.startswith(prefix) for prefix in ALLOWED):
            continue
        offenders.extend(f"{relative}:{line}"
                         for line in _print_calls(path))
    assert not offenders, (
        "print() calls outside cli.py/report/ (use the metrics registry "
        f"or a RunReport instead): {offenders}")
