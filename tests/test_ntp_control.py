"""Mode-6 (control) and mode-7 (private/monlist) codecs and dispatch.

Three tiers:

* **Hypothesis round-trips** — every encodable :class:`ControlPacket`,
  :class:`PrivatePacket` and :class:`MonlistEntry` survives
  encode→decode over the full field ranges, and decode fuzz raises
  only :class:`NtpDecodeError` (never a bare ``struct.error``);
* **framing** — fragmentation/reassembly windows tile the payload with
  the RFC 1305 more-bit contract, monlist trains pack 6×72-byte
  entries into 440-byte packets;
* **server dispatch** — a live :class:`NtpServer` answers readvar with
  its version string, serves monlist from its bounded monitor table
  when unpatched, and drops mode 7 silently when patched.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipv6 import parse
from repro.net.simnet import Network
from repro.ntp.client import NtpClient
from repro.ntp.control import (
    CONTROL_HEADER_SIZE,
    ERR_NONE,
    ERR_REQ_DENIED,
    MAX_CONTROL_DATA,
    MONLIST_ENTRIES_PER_PACKET,
    MONLIST_ENTRY_SIZE,
    MONLIST_PACKET_SIZE,
    MONLIST_REQUEST_SIZE,
    OP_READSTAT,
    OP_READVAR,
    ControlDecodeError,
    ControlPacket,
    MonlistEntry,
    PrivateDecodeError,
    PrivatePacket,
    amplification_factor,
    decode_monlist,
    fragment_response,
    is_monlist_request,
    monlist_deny,
    monlist_request,
    monlist_response,
    peek_mode,
    readstat_request,
    readvar_request,
    reassemble,
)
from repro.ntp.packet import NtpDecodeError
from repro.ntp.server import NtpServer

SERVER = parse("2001:500::1")
CLIENT = parse("2001:db8::c1")


def control_query(network, payload, src=CLIENT, dst=SERVER):
    if network.host(src) is None:
        network.add_host(src)
    return network.udp_request_multi(src, dst, 123, payload)


class TestPeekMode:
    def test_modes(self):
        assert peek_mode(readvar_request().encode()) == 6
        assert peek_mode(monlist_request().encode()) == 7
        assert peek_mode(b"") is None

    def test_time_packet_is_mode_3(self):
        from repro.ntp.packet import client_request

        assert peek_mode(client_request(0.0).encode()) == 3


class TestControlCodec:
    @given(opcode=st.integers(0, 0x1F), sequence=st.integers(0, 0xFFFF),
           status=st.integers(0, 0xFFFF),
           association_id=st.integers(0, 0xFFFF),
           offset=st.integers(0, 0xFFFF),
           data=st.binary(max_size=MAX_CONTROL_DATA),
           response=st.booleans(), error=st.booleans(),
           more=st.booleans(), version=st.integers(1, 7))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_full_range(self, opcode, sequence, status,
                                  association_id, offset, data, response,
                                  error, more, version):
        packet = ControlPacket(
            opcode=opcode, sequence=sequence, status=status,
            association_id=association_id, offset=offset, data=data,
            response=response, error=error, more=more, version=version)
        assert ControlPacket.decode(packet.encode()) == packet

    @given(data=st.binary(max_size=2 * CONTROL_HEADER_SIZE))
    @settings(max_examples=200, deadline=None)
    def test_decode_fuzz_raises_only_decode_error(self, data):
        try:
            packet = ControlPacket.decode(data)
        except NtpDecodeError:
            return
        assert isinstance(packet, ControlPacket)

    def test_data_padded_to_32_bits(self):
        wire = ControlPacket(data=b"abcde").encode()
        assert (len(wire) - CONTROL_HEADER_SIZE) % 4 == 0
        assert ControlPacket.decode(wire).data == b"abcde"

    def test_encode_validation(self):
        with pytest.raises(ValueError):
            ControlPacket(opcode=32).encode()
        with pytest.raises(ValueError):
            ControlPacket(sequence=0x10000).encode()
        with pytest.raises(ValueError):
            ControlPacket(version=0).encode()
        with pytest.raises(ValueError):
            ControlPacket(data=b"x" * (MAX_CONTROL_DATA + 1)).encode()

    def test_decode_rejects_wrong_mode(self):
        wire = bytearray(readvar_request().encode())
        wire[0] = (wire[0] & ~0x7) | 7  # mode 7, not 6
        with pytest.raises(ControlDecodeError):
            ControlPacket.decode(bytes(wire))

    def test_decode_rejects_overlong_count(self):
        wire = bytearray(ControlPacket(data=b"abcd").encode())
        wire[11] = 200  # count claims more than present
        with pytest.raises(ControlDecodeError):
            ControlPacket.decode(bytes(wire))

    def test_request_builders(self):
        assert readvar_request(sequence=9).opcode == OP_READVAR
        assert readstat_request().opcode == OP_READSTAT
        assert not readvar_request().response


class TestFragmentation:
    @given(data=st.binary(max_size=3 * MAX_CONTROL_DATA),
           mtu=st.integers(1, MAX_CONTROL_DATA))
    @settings(max_examples=100, deadline=None)
    def test_fragment_reassemble_roundtrip(self, data, mtu):
        fragments = fragment_response(readvar_request(), data, mtu=mtu)
        assert reassemble(fragments) == data
        # Survives the wire and out-of-order arrival too.
        decoded = [ControlPacket.decode(fragment.encode())
                   for fragment in fragments]
        assert reassemble(reversed(decoded)) == data

    def test_more_bit_contract(self):
        fragments = fragment_response(readvar_request(), b"x" * 100, mtu=40)
        assert [f.more for f in fragments] == [True, True, False]
        assert [f.offset for f in fragments] == [0, 40, 80]

    def test_empty_payload_still_responds(self):
        fragments = fragment_response(readstat_request(), b"")
        assert len(fragments) == 1
        assert fragments[0].response and not fragments[0].more

    def test_fragments_mirror_request_identity(self):
        request = readvar_request(sequence=77, association_id=5)
        for fragment in fragment_response(request, b"y" * 50, mtu=20):
            assert fragment.sequence == 77
            assert fragment.association_id == 5
            assert fragment.opcode == OP_READVAR

    def test_reassemble_rejects_gap(self):
        fragments = fragment_response(readvar_request(), b"z" * 90, mtu=30)
        with pytest.raises(ControlDecodeError):
            reassemble([fragments[0], fragments[2]])

    def test_reassemble_rejects_missing_final(self):
        fragments = fragment_response(readvar_request(), b"z" * 90, mtu=30)
        with pytest.raises(ControlDecodeError):
            reassemble(fragments[:2])  # last one present still says more

    def test_reassemble_rejects_non_response(self):
        with pytest.raises(ControlDecodeError):
            reassemble([readvar_request()])

    def test_reassemble_rejects_empty(self):
        with pytest.raises(ControlDecodeError):
            reassemble([])

    def test_mtu_validation(self):
        with pytest.raises(ValueError):
            fragment_response(readvar_request(), b"", mtu=0)


class TestPrivateCodec:
    @given(request_code=st.integers(0, 0xFF),
           implementation=st.integers(0, 0xFF),
           sequence=st.integers(0, 0x7F), err=st.integers(0, 0xF),
           data=st.binary(max_size=MONLIST_ENTRY_SIZE * 2),
           response=st.booleans(), more=st.booleans(),
           auth=st.booleans(), version=st.integers(1, 7))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_full_range(self, request_code, implementation,
                                  sequence, err, data, response, more,
                                  auth, version):
        packet = PrivatePacket(
            request_code=request_code, implementation=implementation,
            sequence=sequence, err=err, nitems=len(data) and 1,
            size=len(data), data=data, response=response, more=more,
            auth=auth, version=version)
        assert PrivatePacket.decode(packet.encode()) == packet

    @given(data=st.binary(max_size=MONLIST_REQUEST_SIZE))
    @settings(max_examples=200, deadline=None)
    def test_decode_fuzz_raises_only_decode_error(self, data):
        try:
            packet = PrivatePacket.decode(data)
        except NtpDecodeError:
            return
        assert isinstance(packet, PrivatePacket)

    def test_sequence_range(self):
        with pytest.raises(ValueError):
            PrivatePacket(sequence=0x80).encode()

    def test_framing_validation(self):
        with pytest.raises(ValueError):
            PrivatePacket(nitems=2, size=72, data=b"").encode()

    def test_request_is_72_bytes(self):
        assert len(monlist_request().encode()) == MONLIST_REQUEST_SIZE

    def test_is_monlist_request(self):
        assert is_monlist_request(monlist_request())
        assert not is_monlist_request(monlist_deny())
        assert not is_monlist_request(PrivatePacket(request_code=1))


class TestMonlistEntry:
    @given(address=st.integers(0, (1 << 128) - 1),
           port=st.integers(0, 0xFFFF), count=st.integers(0, 0xFFFFFFFF),
           mode=st.integers(0, 0xFF), version=st.integers(0, 0xFF),
           last_seen=st.integers(0, 0xFFFFFFFF),
           first_seen=st.integers(0, 0xFFFFFFFF))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_full_range(self, address, port, count, mode,
                                  version, last_seen, first_seen):
        entry = MonlistEntry(
            address=address, port=port, count=count, mode=mode,
            version=version, last_seen=last_seen, first_seen=first_seen)
        wire = entry.encode()
        assert len(wire) == MONLIST_ENTRY_SIZE
        assert MonlistEntry.decode(wire) == entry

    def test_decode_rejects_wrong_size(self):
        with pytest.raises(PrivateDecodeError):
            MonlistEntry.decode(b"\0" * 71)


class TestMonlistTrain:
    def test_empty_table_one_empty_response(self):
        packets = monlist_response([])
        assert len(packets) == 1
        assert packets[0].nitems == 0 and packets[0].err == ERR_NONE
        assert decode_monlist([packets[0].encode()]) == ([], ERR_NONE)

    def test_train_packs_six_entries_per_packet(self):
        entries = [MonlistEntry(address=i) for i in range(13)]
        packets = monlist_response(entries, sequence=5)
        assert [p.nitems for p in packets] == [6, 6, 1]
        assert [p.more for p in packets] == [True, True, False]
        assert all(p.sequence == 5 for p in packets)
        wire = [p.encode() for p in packets]
        assert len(wire[0]) == MONLIST_PACKET_SIZE == 440
        decoded, err = decode_monlist(wire)
        assert err == ERR_NONE
        assert decoded == entries

    @given(count=st.integers(0, 40))
    @settings(max_examples=50, deadline=None)
    def test_train_roundtrip(self, count):
        entries = [MonlistEntry(address=1 << 64 | i, port=123 + i)
                   for i in range(count)]
        wire = [p.encode() for p in monlist_response(entries)]
        expected = max(
            1, -(-count // MONLIST_ENTRIES_PER_PACKET))
        assert len(wire) == expected
        assert decode_monlist(wire) == (entries, ERR_NONE)

    def test_deny_short_circuits(self):
        entries, err = decode_monlist([monlist_deny(3).encode()])
        assert entries == [] and err == ERR_REQ_DENIED

    def test_rejects_broken_more_chain(self):
        entries = [MonlistEntry(address=i) for i in range(13)]
        wire = [p.encode() for p in monlist_response(entries)]
        with pytest.raises(PrivateDecodeError):
            decode_monlist(wire[:2])  # truncated train still says more

    def test_rejects_non_response(self):
        with pytest.raises(PrivateDecodeError):
            decode_monlist([monlist_request().encode()])

    def test_rejects_empty_train(self):
        with pytest.raises(PrivateDecodeError):
            decode_monlist([])

    def test_amplification_factor(self):
        assert amplification_factor(72, 3 * 440) == pytest.approx(18.33, abs=0.01)
        assert amplification_factor(0, 440) == 0.0


class TestServerControlDispatch:
    def test_readvar_reports_version(self, network):
        NtpServer(network, SERVER, location="X",
                  software_version="ntpd 4.2.6p5")
        payloads = control_query(network, readvar_request().encode())
        data = reassemble([ControlPacket.decode(p) for p in payloads])
        assert b'version="ntpd 4.2.6p5"' in data

    def test_small_mtu_forces_fragment_train(self, network):
        server = NtpServer(network, SERVER, location="X", control_mtu=16)
        payloads = control_query(network, readvar_request().encode())
        assert len(payloads) > 1
        data = reassemble([ControlPacket.decode(p) for p in payloads])
        assert data.decode("ascii") == server.system_variables()

    def test_readstat_answers_empty(self, network):
        NtpServer(network, SERVER, location="X")
        payloads = control_query(network, readstat_request().encode())
        assert len(payloads) == 1
        assert ControlPacket.decode(payloads[0]).data == b""

    def test_unknown_opcode_answers_error(self, network):
        NtpServer(network, SERVER, location="X")
        payloads = control_query(
            network, ControlPacket(opcode=31).encode())
        assert ControlPacket.decode(payloads[0]).error

    def test_response_packets_ignored(self, network):
        server = NtpServer(network, SERVER, location="X")
        request = ControlPacket(opcode=OP_READVAR, response=True)
        assert control_query(network, request.encode()) == []
        assert server.stats.control_queries == 0


class TestServerMonlist:
    def serve_clients(self, network, server, count):
        for index in range(count):
            client = NtpClient(network, CLIENT + index)
            assert client.query(SERVER) is not None
            network.clock.advance(1.0)
        return server

    def test_unpatched_serves_recent_clients(self, network):
        server = NtpServer(network, SERVER, location="X",
                           monlist_enabled=True)
        self.serve_clients(network, server, 13)
        payloads = control_query(network, monlist_request(7).encode())
        entries, err = decode_monlist(payloads)
        assert err == ERR_NONE
        assert len(entries) == 13
        assert len(payloads) == 3  # 6+6+1 entry train
        # Most recent client first.
        assert entries[0].address == CLIENT + 12
        assert server.stats.monlist_queries == 1
        assert server.stats.monlist_denied == 0

    def test_patched_drops_mode7_silently(self, network):
        server = NtpServer(network, SERVER, location="X",
                           monlist_enabled=False)
        self.serve_clients(network, server, 3)
        assert control_query(network, monlist_request().encode()) == []
        assert server.stats.monlist_queries == 1
        assert server.stats.monlist_denied == 1

    def test_non_monlist_request_denied_explicitly(self, network):
        NtpServer(network, SERVER, location="X", monlist_enabled=True)
        payloads = control_query(
            network, PrivatePacket(request_code=1).encode())
        assert decode_monlist(payloads) == ([], ERR_REQ_DENIED)

    def test_monitor_table_capacity_evicts_lru(self, network):
        server = NtpServer(network, SERVER, location="X",
                           monlist_enabled=True, monlist_capacity=8)
        self.serve_clients(network, server, 20)
        assert server.monitored_clients == 8
        entries = server.monlist_entries()
        # The 8 most recent clients survive, oldest evicted.
        assert {e.address for e in entries} \
            == {CLIENT + index for index in range(12, 20)}

    def test_monitor_ttl_prunes_idle_records(self, network):
        server = NtpServer(network, SERVER, location="X",
                           monlist_enabled=True, monitor_ttl=10.0)
        self.serve_clients(network, server, 4)
        network.clock.advance(100.0)
        assert server.prune() == 4
        assert server.monitored_clients == 0
        assert server.stats.clients_pruned == 4
