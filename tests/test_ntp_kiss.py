"""Tests for NTP kiss-o'-death rate limiting (RFC 5905 §7.4)."""


from repro.ipv6 import parse
from repro.ntp.client import NtpClient
from repro.ntp.packet import (
    KISS_DENY,
    Mode,
    NtpPacket,
    client_request,
    kiss_code,
    kiss_of_death,
    server_response,
)
from repro.ntp.server import NtpServer

SERVER = parse("2001:500::1")
CLIENT = parse("2001:db8::c1")


class TestKissCodec:
    def test_kod_shape(self):
        request = client_request(0.0)
        kod = kiss_of_death(request)
        assert kod.stratum == 0
        assert kod.mode is Mode.SERVER
        assert kiss_code(kod) == "RATE"

    def test_deny_code(self):
        kod = kiss_of_death(client_request(0.0), KISS_DENY)
        assert kiss_code(kod) == "DENY"

    def test_roundtrip_over_wire(self):
        kod = kiss_of_death(client_request(0.0))
        decoded = NtpPacket.decode(kod.encode())
        assert kiss_code(decoded) == "RATE"

    def test_normal_response_has_no_kiss(self):
        response = server_response(client_request(0.0), 0.1, 0.1)
        assert kiss_code(response) is None

    def test_client_mode_packet_no_kiss(self):
        assert kiss_code(client_request(0.0)) is None


class TestServerRateLimit:
    def test_fast_client_gets_rate_kiss(self, network):
        NtpServer(network, SERVER, location="X", min_interval=8.0)
        client = NtpClient(network, CLIENT)
        assert client.query(SERVER) is not None
        # Immediate re-query: rate limited.
        assert client.query(SERVER) is None
        assert client.kisses == ["RATE"]

    def test_polite_client_unaffected(self, network):
        NtpServer(network, SERVER, location="X", min_interval=8.0)
        client = NtpClient(network, CLIENT)
        for _ in range(5):
            assert client.query(SERVER) is not None
            network.clock.advance(10.0)
        assert client.kisses == []

    def test_limit_is_per_client(self, network):
        server = NtpServer(network, SERVER, location="X", min_interval=8.0)
        first = NtpClient(network, CLIENT)
        second = NtpClient(network, parse("2001:db8::c2"))
        assert first.query(SERVER) is not None
        assert second.query(SERVER) is not None  # different client: fine
        assert server.stats.rate_limited == 0
        assert first.query(SERVER) is None
        assert server.stats.rate_limited == 1

    def test_rate_limited_requests_not_captured(self, network):
        server = NtpServer(network, SERVER, location="X", min_interval=8.0)
        captured = []
        server.add_capture_hook(lambda a, p, r, t: captured.append(a))
        client = NtpClient(network, CLIENT)
        client.query(SERVER)
        client.query(SERVER)  # kissed
        assert captured == [CLIENT]

    def test_disabled_by_default(self, network):
        NtpServer(network, SERVER, location="X")
        client = NtpClient(network, CLIENT)
        assert client.query(SERVER) is not None
        assert client.query(SERVER) is not None
