"""Tests for NTP kiss-o'-death rate limiting (RFC 5905 §7.4)."""


from repro.ipv6 import parse
from repro.ntp.client import NtpClient
from repro.ntp.packet import (
    KISS_DENY,
    Mode,
    NtpPacket,
    client_request,
    kiss_code,
    kiss_of_death,
    server_response,
)
from repro.ntp.server import NtpServer

SERVER = parse("2001:500::1")
CLIENT = parse("2001:db8::c1")


class TestKissCodec:
    def test_kod_shape(self):
        request = client_request(0.0)
        kod = kiss_of_death(request)
        assert kod.stratum == 0
        assert kod.mode is Mode.SERVER
        assert kiss_code(kod) == "RATE"

    def test_deny_code(self):
        kod = kiss_of_death(client_request(0.0), KISS_DENY)
        assert kiss_code(kod) == "DENY"

    def test_roundtrip_over_wire(self):
        kod = kiss_of_death(client_request(0.0))
        decoded = NtpPacket.decode(kod.encode())
        assert kiss_code(decoded) == "RATE"

    def test_normal_response_has_no_kiss(self):
        response = server_response(client_request(0.0), 0.1, 0.1)
        assert kiss_code(response) is None

    def test_client_mode_packet_no_kiss(self):
        assert kiss_code(client_request(0.0)) is None


class TestServerRateLimit:
    def test_fast_client_gets_rate_kiss(self, network):
        NtpServer(network, SERVER, location="X", min_interval=8.0)
        client = NtpClient(network, CLIENT)
        assert client.query(SERVER) is not None
        # Immediate re-query: rate limited.
        assert client.query(SERVER) is None
        assert client.kisses == ["RATE"]

    def test_polite_client_unaffected(self, network):
        NtpServer(network, SERVER, location="X", min_interval=8.0)
        client = NtpClient(network, CLIENT)
        for _ in range(5):
            assert client.query(SERVER) is not None
            network.clock.advance(10.0)
        assert client.kisses == []

    def test_limit_is_per_client(self, network):
        server = NtpServer(network, SERVER, location="X", min_interval=8.0)
        first = NtpClient(network, CLIENT)
        second = NtpClient(network, parse("2001:db8::c2"))
        assert first.query(SERVER) is not None
        assert second.query(SERVER) is not None  # different client: fine
        assert server.stats.rate_limited == 0
        assert first.query(SERVER) is None
        assert server.stats.rate_limited == 1

    def test_rate_limited_requests_not_captured(self, network):
        server = NtpServer(network, SERVER, location="X", min_interval=8.0)
        captured = []
        server.add_capture_hook(lambda a, p, r, t: captured.append(a))
        client = NtpClient(network, CLIENT)
        client.query(SERVER)
        client.query(SERVER)  # kissed
        assert captured == [CLIENT]

    def test_disabled_by_default(self, network):
        NtpServer(network, SERVER, location="X")
        client = NtpClient(network, CLIENT)
        assert client.query(SERVER) is not None
        assert client.query(SERVER) is not None

    def test_lockout_recovery_after_backoff(self, network):
        """Rejected requests must not refresh the limiter's timestamp.

        The seed server refreshed it, so a client steadily polling
        below min_interval was kissed forever — backing off for one
        compliant interval must always recover service.
        """
        NtpServer(network, SERVER, location="X", min_interval=8.0)
        client = NtpClient(network, CLIENT)
        assert client.query(SERVER) is not None  # t=0: served
        network.clock.advance(4.0)
        assert client.query(SERVER) is None      # t=4: kissed
        network.clock.advance(5.0)
        # t=9: 9s since the *served* request — admitted.  With the
        # timestamp-refresh bug this is 5s since the rejection and the
        # client stays locked out.
        assert client.query(SERVER) is not None
        assert client.kisses == ["RATE"]

    def test_steady_fast_poller_not_locked_out_forever(self, network):
        NtpServer(network, SERVER, location="X", min_interval=8.0)
        client = NtpClient(network, CLIENT)
        served = 0
        for _ in range(12):
            if client.query(SERVER) is not None:
                served += 1
            network.clock.advance(5.0)
        # Every other 5s poll lands past the 8s window: roughly half
        # are served.  The lockout bug served exactly the first one.
        assert served >= 5


class TestTrackedClientBound:
    def test_last_request_map_is_ttl_pruned(self, network):
        """The limiter map must not grow one entry per client forever."""
        server = NtpServer(network, SERVER, location="X",
                           min_interval=8.0, prune_every=16)
        for index in range(200):
            NtpClient(network, CLIENT + index).query(SERVER)
            network.clock.advance(1.0)
        # Entries older than min_interval admit anyway, so sweeps (every
        # 16 requests) keep at most interval + sweep-cadence live rows.
        assert server.tracked_clients <= 24
        assert server.stats.clients_pruned >= 176

    def test_manual_prune_empties_expired(self, network):
        server = NtpServer(network, SERVER, location="X",
                           min_interval=8.0)
        for index in range(5):
            NtpClient(network, CLIENT + index).query(SERVER)
        assert server.tracked_clients == 5
        network.clock.advance(10.0)
        assert server.prune() == 5
        assert server.tracked_clients == 0
