"""Unit tests for the RFC 5905 packet codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ntp.packet import (
    NTP_UNIX_OFFSET,
    PACKET_SIZE,
    LeapIndicator,
    Mode,
    NtpDecodeError,
    NtpPacket,
    client_request,
    from_ntp_time,
    server_response,
    to_ntp_time,
)


class TestTimestamps:
    def test_epoch_offset(self):
        assert to_ntp_time(0.0) == NTP_UNIX_OFFSET << 32

    def test_fraction_encoding(self):
        stamp = to_ntp_time(0.5)
        assert stamp & 0xFFFFFFFF == 1 << 31

    # Era 0 ends in 2036 when the 32-bit seconds field wraps; the codec
    # masks (correct wire behaviour), so roundtrip only holds inside it.
    @given(st.floats(min_value=0, max_value=float(2**32 - 1 - NTP_UNIX_OFFSET),
                     allow_nan=False))
    def test_roundtrip(self, seconds):
        assert from_ntp_time(to_ntp_time(seconds)) == pytest.approx(
            seconds, abs=1e-6)

    def test_era_rollover_wraps(self):
        wrapped = to_ntp_time(float(2**32 - NTP_UNIX_OFFSET))
        assert wrapped >> 32 == 0


class TestCodec:
    def test_encode_length(self):
        assert len(NtpPacket().encode()) == PACKET_SIZE

    def test_roundtrip_all_fields(self):
        packet = NtpPacket(
            leap=LeapIndicator.LAST_MINUTE_61,
            version=4,
            mode=Mode.SERVER,
            stratum=2,
            poll=10,
            precision=-23,
            root_delay=0x1234,
            root_dispersion=0x5678,
            reference_id=0x47505300,
            reference_timestamp=111,
            origin_timestamp=222,
            receive_timestamp=333,
            transmit_timestamp=444,
        )
        decoded = NtpPacket.decode(packet.encode())
        assert decoded == packet

    def test_extensions_preserved(self):
        packet = NtpPacket(extensions=b"\x01\x02\x03")
        decoded = NtpPacket.decode(packet.encode())
        assert decoded.extensions == b"\x01\x02\x03"

    def test_decode_rejects_short(self):
        with pytest.raises(NtpDecodeError):
            NtpPacket.decode(b"\x00" * 10)

    def test_decode_rejects_version_zero(self):
        raw = bytearray(NtpPacket().encode())
        raw[0] = 0x03  # version bits = 0
        with pytest.raises(NtpDecodeError):
            NtpPacket.decode(bytes(raw))

    def test_encode_rejects_bad_version(self):
        with pytest.raises(ValueError):
            NtpPacket(version=9).encode()

    def test_negative_precision_roundtrip(self):
        packet = NtpPacket(precision=-29)
        assert NtpPacket.decode(packet.encode()).precision == -29

    def test_negative_poll_roundtrip(self):
        # Regression: the seed codec packed poll unsigned (`& 0xFF`),
        # so a sub-second poll exponent of -6 decoded as 250.
        packet = NtpPacket(poll=-6)
        assert NtpPacket.decode(packet.encode()).poll == -6

    def test_nonnegative_poll_wire_bytes_unchanged(self):
        # The signed-poll fix must not move a single wire byte for the
        # non-negative polls every existing golden was built from.
        packet = NtpPacket(poll=10, precision=-23)
        raw = packet.encode()
        assert raw[2] == 10
        assert raw[3] == (-23) & 0xFF

    def test_encode_rejects_out_of_range_poll(self):
        with pytest.raises(ValueError):
            NtpPacket(poll=128).encode()
        with pytest.raises(ValueError):
            NtpPacket(poll=-129).encode()

    @given(
        leap=st.sampled_from(list(LeapIndicator)),
        mode=st.sampled_from(list(Mode)),
        stratum=st.integers(0, 255),
        poll=st.integers(-128, 127),
        timestamps=st.tuples(*[st.integers(0, 2**64 - 1)] * 4),
    )
    def test_roundtrip_property(self, leap, mode, stratum, poll, timestamps):
        packet = NtpPacket(
            leap=leap, mode=mode, stratum=stratum, poll=poll,
            reference_timestamp=timestamps[0],
            origin_timestamp=timestamps[1],
            receive_timestamp=timestamps[2],
            transmit_timestamp=timestamps[3],
        )
        assert NtpPacket.decode(packet.encode()) == packet

    @given(
        leap=st.sampled_from(list(LeapIndicator)),
        version=st.integers(1, 7),
        mode=st.sampled_from(list(Mode)),
        stratum=st.integers(0, 255),
        poll=st.integers(-128, 127),
        precision=st.integers(-128, 127),
        root_delay=st.integers(0, 2**32 - 1),
        root_dispersion=st.integers(0, 2**32 - 1),
        reference_id=st.integers(0, 2**32 - 1),
        timestamps=st.tuples(*[st.integers(0, 2**64 - 1)] * 4),
        extensions=st.binary(max_size=64),
    )
    def test_roundtrip_full_range(self, leap, version, mode, stratum, poll,
                                  precision, root_delay, root_dispersion,
                                  reference_id, timestamps, extensions):
        """Every field over its full wire range survives a round trip."""
        packet = NtpPacket(
            leap=leap, version=version, mode=mode, stratum=stratum,
            poll=poll, precision=precision, root_delay=root_delay,
            root_dispersion=root_dispersion, reference_id=reference_id,
            reference_timestamp=timestamps[0],
            origin_timestamp=timestamps[1],
            receive_timestamp=timestamps[2],
            transmit_timestamp=timestamps[3],
            extensions=extensions,
        )
        assert NtpPacket.decode(packet.encode()) == packet

    @given(data=st.binary(max_size=96))
    def test_decode_fuzz_raises_only_decode_error(self, data):
        """Arbitrary bytes either decode or raise NtpDecodeError — never
        a raw struct.error or bare ValueError."""
        try:
            packet = NtpPacket.decode(data)
        except NtpDecodeError:
            return
        assert isinstance(packet, NtpPacket)
        assert packet.encode() == data


class TestRequestResponse:
    def test_client_request_is_mode3(self):
        request = client_request(100.0)
        assert request.mode is Mode.CLIENT
        assert from_ntp_time(request.transmit_timestamp) == pytest.approx(100.0)

    def test_server_response_mirrors_origin(self):
        request = client_request(100.0)
        response = server_response(request, receive_time=100.1,
                                   transmit_time=100.2)
        assert response.mode is Mode.SERVER
        assert response.origin_timestamp == request.transmit_timestamp
        assert response.stratum == 2

    def test_server_response_caps_version(self):
        request = client_request(0.0, version=7)
        assert server_response(request, 0.0, 0.0).version == 4
