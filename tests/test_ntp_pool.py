"""Unit tests for the NTP Pool simulator."""

import random
from collections import Counter

import pytest

from repro.ipv6 import parse
from repro.ntp.pool import SCORE_THRESHOLD, NtpPool, weighted_request_rates
from repro.ntp.server import NtpServer

S1 = parse("2001:500::1")
S2 = parse("2001:500::2")
S3 = parse("2001:500::3")
MONITOR = parse("2001:500::ff")


@pytest.fixture()
def pool(network):
    return NtpPool(network, rng=random.Random(7), monitor_address=MONITOR)


class TestRegistration:
    def test_register_and_resolve(self, pool):
        pool.register(S1, "de")
        assert pool.resolve("de") == S1

    def test_duplicate_rejected(self, pool):
        pool.register(S1, "de")
        with pytest.raises(ValueError):
            pool.register(S1, "de")

    def test_bad_netspeed_rejected(self, pool):
        with pytest.raises(ValueError):
            pool.register(S1, "de", netspeed=0)

    def test_deregister_removes_from_rotation(self, pool):
        pool.register(S1, "de")
        pool.deregister(S1)
        assert pool.resolve("de") is None
        assert not pool.server(S1).in_rotation

    def test_deregister_unknown_raises(self, pool):
        with pytest.raises(KeyError):
            pool.deregister(S1)

    def test_empty_pool_resolves_none(self, pool):
        assert pool.resolve("de") is None


class TestGeoDnsResolution:
    def test_country_zone_preferred(self, pool):
        pool.register(S1, "de")
        pool.register(S2, "us")
        for _ in range(20):
            assert pool.resolve("de") == S1

    def test_empty_zone_falls_back_globally(self, pool):
        pool.register(S1, "de")
        assert pool.resolve("jp") == S1

    def test_netspeed_weighting(self, pool):
        pool.register(S1, "de", netspeed=9000)
        pool.register(S2, "de", netspeed=1000)
        rng = random.Random(3)
        counts = Counter(pool.resolve("de", rng) for _ in range(2000))
        assert counts[S1] > counts[S2] * 4

    def test_set_netspeed(self, pool):
        pool.register(S1, "de", netspeed=1000)
        pool.set_netspeed(S1, 5000)
        assert pool.server(S1).netspeed == 5000
        with pytest.raises(ValueError):
            pool.set_netspeed(S1, -1)

    def test_populated_zones(self, pool):
        pool.register(S1, "de")
        pool.register(S2, "us")
        pool.deregister(S2)
        assert pool.populated_zones() == ["de"]


class TestMonitoring:
    def test_healthy_server_stays_in_rotation(self, network, pool):
        NtpServer(network, S1, location="DE")
        pool.register(S1, "de")
        for _ in range(5):
            pool.run_monitor()
        assert pool.server(S1).in_rotation

    def test_dead_server_drops_out(self, network, pool):
        # No NtpServer bound: queries time out, score decays.
        pool.register(S1, "de")
        assert pool.server(S1).in_rotation
        for _ in range(3):
            pool.run_monitor()
        assert pool.server(S1).score < SCORE_THRESHOLD
        assert not pool.server(S1).in_rotation
        assert pool.resolve("de") is None

    def test_recovery_after_revival(self, network, pool):
        pool.register(S1, "de")
        for _ in range(3):
            pool.run_monitor()
        assert not pool.server(S1).in_rotation
        NtpServer(network, S1, location="DE")
        for _ in range(20):
            pool.run_monitor()
        assert pool.server(S1).in_rotation

    def test_monitorless_pool_raises(self, network):
        pool = NtpPool(network)
        pool.register(S1, "de")
        with pytest.raises(RuntimeError):
            pool.run_monitor()


class TestWeightedRates:
    def test_zone_demand_split_by_netspeed(self, pool):
        pool.register(S1, "de", netspeed=3000)
        pool.register(S2, "de", netspeed=1000)
        rates = weighted_request_rates(pool, {"de": 100.0})
        assert rates[S1] == pytest.approx(75.0)
        assert rates[S2] == pytest.approx(25.0)

    def test_empty_zone_spills_globally(self, pool):
        pool.register(S1, "de", netspeed=1000)
        pool.register(S2, "us", netspeed=1000)
        rates = weighted_request_rates(pool, {"jp": 100.0})
        assert rates[S1] == pytest.approx(50.0)
        assert rates[S2] == pytest.approx(50.0)

    def test_total_demand_conserved(self, pool):
        pool.register(S1, "de", netspeed=2500)
        pool.register(S2, "us", netspeed=800)
        pool.register(S3, "us", netspeed=200)
        demand = {"de": 60.0, "us": 30.0, "jp": 10.0}
        rates = weighted_request_rates(pool, demand)
        assert sum(rates.values()) == pytest.approx(sum(demand.values()))
