"""Integration tests: SNTP server and client over the simulated network."""

import pytest

from repro.ipv6 import parse
from repro.ntp.client import NtpClient
from repro.ntp.packet import Mode, NtpPacket
from repro.ntp.server import NTP_PORT, NtpServer

SERVER = parse("2001:db8::123")
CLIENT = parse("2001:db8:ffff::5")


@pytest.fixture()
def server(network):
    return NtpServer(network, SERVER, location="DE")


@pytest.fixture()
def client(network):
    return NtpClient(network, CLIENT)


class TestExchange:
    def test_successful_sync(self, network, server, client):
        result = client.query(SERVER)
        assert result is not None
        assert result.stratum == 2
        assert result.server == SERVER
        assert result.round_trip >= 0.0

    def test_stats_counted(self, network, server, client):
        client.query(SERVER)
        client.query(SERVER)
        assert server.stats.requests == 2
        assert server.stats.responses == 2

    def test_query_dead_server(self, network, client):
        assert client.query(parse("2001:db8::dead")) is None

    def test_stopped_server_silent(self, network, server, client):
        server.stop()
        assert client.query(SERVER) is None
        assert not server.serving


class TestCapture:
    def test_capture_hook_sees_client(self, network, server, client):
        captured = []
        server.add_capture_hook(
            lambda address, port, request, time: captured.append(address)
        )
        client.query(SERVER)
        assert captured == [CLIENT]

    def test_capture_carries_time(self, network, server, client):
        times = []
        server.add_capture_hook(
            lambda address, port, request, time: times.append(time)
        )
        network.clock.advance(42.0)
        client.query(SERVER)
        assert times == [42.0]

    def test_malformed_request_not_captured(self, network, server):
        captured = []
        server.add_capture_hook(
            lambda address, port, request, time: captured.append(address)
        )
        network.add_host(CLIENT)
        assert network.udp_request(CLIENT, SERVER, NTP_PORT, b"junk") is None
        assert captured == []
        assert server.stats.malformed == 1

    def test_wrong_mode_not_captured(self, network, server):
        captured = []
        server.add_capture_hook(
            lambda address, port, request, time: captured.append(address)
        )
        network.add_host(CLIENT)
        packet = NtpPacket(mode=Mode.SERVER)
        assert network.udp_request(CLIENT, SERVER, NTP_PORT,
                                   packet.encode()) is None
        assert server.stats.wrong_mode == 1
        assert captured == []


class TestClientValidation:
    def test_client_rejects_bogus_origin(self, network, server):
        """RFC 5905 TEST2: a response not matching our transmit timestamp
        is discarded."""
        network.add_host(CLIENT)
        # Craft a fake server that answers with a wrong origin timestamp.
        fake_addr = parse("2001:db8::fa4e")

        def fake_responder(datagram):
            request = NtpPacket.decode(datagram.payload)
            response = NtpPacket(mode=Mode.SERVER, stratum=2,
                                 origin_timestamp=request.transmit_timestamp ^ 1)
            return response.encode()

        network.add_host(fake_addr).bind_udp(NTP_PORT, fake_responder)
        client = NtpClient(network, CLIENT)
        assert client.query(fake_addr) is None

    def test_client_rejects_client_mode_reply(self, network):
        network.add_host(CLIENT)
        fake_addr = parse("2001:db8::fa4f")

        def echo_mode3(datagram):
            request = NtpPacket.decode(datagram.payload)
            return NtpPacket(mode=Mode.CLIENT,
                             origin_timestamp=request.transmit_timestamp
                             ).encode()

        network.add_host(fake_addr).bind_udp(NTP_PORT, echo_mode3)
        client = NtpClient(network, CLIENT)
        assert client.query(fake_addr) is None

    def test_offset_zero_in_simulation(self, network, server, client):
        """Both endpoints share the virtual clock, so offset must be 0."""
        result = client.query(SERVER)
        assert result.offset == pytest.approx(0.0, abs=1e-6)
