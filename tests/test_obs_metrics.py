"""Unit tests for the metrics subsystem (repro.obs)."""

import pytest

from repro.net.clock import VirtualClock
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    current_registry,
    use_registry,
)


class TestCounter:
    def test_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(5)
        gauge.dec(2)
        gauge.inc()
        assert gauge.value == 4

    def test_set_max_keeps_high_water(self):
        gauge = Gauge()
        gauge.set_max(10)
        gauge.set_max(3)
        assert gauge.value == 10


class TestHistogramBuckets:
    """Fixed-boundary edge cases (the satellite's explicit target)."""

    def test_value_on_boundary_lands_in_that_bucket(self):
        histogram = Histogram(bounds=(1.0, 2.0, 4.0))
        histogram.observe(2.0)
        assert histogram.counts == [0, 1, 0, 0]

    def test_value_below_first_boundary(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(0.0)
        histogram.observe(-3.0)
        assert histogram.counts[0] == 2

    def test_value_above_last_boundary_overflows(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(99.0)
        assert histogram.counts == [0, 0, 1]
        # The overflow bucket reports the observed max as its quantile.
        assert histogram.quantile(1.0) == 99.0

    def test_counts_has_one_more_slot_than_bounds(self):
        histogram = Histogram(bounds=(1.0, 2.0, 3.0))
        assert len(histogram.counts) == 4

    def test_boundaries_must_strictly_increase(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=())

    def test_sum_count_mean(self):
        histogram = Histogram(bounds=(10.0,))
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(6.0)
        assert histogram.mean == pytest.approx(2.0)

    def test_empty_quantile_is_zero(self):
        assert Histogram(bounds=(1.0,)).quantile(0.5) == 0.0

    def test_quantile_walks_buckets(self):
        histogram = Histogram(bounds=(1.0, 2.0, 4.0))
        for _ in range(90):
            histogram.observe(0.5)   # bucket le=1.0
        for _ in range(10):
            histogram.observe(3.0)   # bucket le=4.0
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(0.99) == 4.0

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0,)).quantile(1.5)

    def test_merged(self):
        a, b = Histogram(bounds=(1.0, 2.0)), Histogram(bounds=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        merged = Histogram.merged([a, b])
        assert merged.counts == [1, 1, 1]
        assert merged.count == 3
        assert merged.quantile(1.0) == 9.0

    def test_merged_requires_same_bounds(self):
        with pytest.raises(ValueError):
            Histogram.merged([Histogram(bounds=(1.0,)),
                              Histogram(bounds=(2.0,))])


class TestRegistry:
    def test_get_or_create_same_series(self):
        registry = MetricsRegistry()
        first = registry.counter("hits_total", proto="ssh")
        second = registry.counter("hits_total", proto="ssh")
        assert first is second

    def test_labels_distinguish_series(self):
        registry = MetricsRegistry()
        ssh = registry.counter("hits_total", proto="ssh")
        coap = registry.counter("hits_total", proto="coap")
        assert ssh is not coap

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_histogram_bounds_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("lat", buckets=(1.0, 3.0))

    def test_find_matches_label_subsets(self):
        registry = MetricsRegistry()
        registry.counter("n", engine="e/shard0", proto="ssh").inc(3)
        registry.counter("n", engine="e/shard1", proto="ssh").inc(5)
        matches = registry.find("n", proto="ssh")
        assert len(matches) == 2
        only = registry.find("n", engine="e/shard1")
        assert len(only) == 1 and only[0][1].value == 5

    def test_value_lookup(self):
        registry = MetricsRegistry()
        registry.counter("n", a="1").inc(7)
        assert registry.value("n", a="1") == 7
        assert registry.value("n", a="2") is None

    def test_snapshot_is_deterministic_and_sorted(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("zeta").inc()
            registry.counter("alpha", b="2").inc(2)
            registry.counter("alpha", b="1").inc(1)
            registry.gauge("depth").set(4)
            registry.histogram("lat", buckets=(1.0,)).observe(0.5)
            return registry.snapshot()

        first, second = build(), build()
        assert first == second
        names = [entry["name"] for entry in first["counters"]]
        assert names == sorted(names)


class TestRegistryScoping:
    def test_use_registry_scopes_and_restores(self):
        outer = current_registry()
        with use_registry() as registry:
            assert current_registry() is registry
            assert registry is not outer
        assert current_registry() is outer

    def test_nested_scopes(self):
        with use_registry() as a:
            with use_registry() as b:
                assert current_registry() is b
            assert current_registry() is a


class TestSpan:
    def test_measures_virtual_time(self):
        clock = VirtualClock()
        histogram = Histogram(bounds=(5.0, 50.0))
        with Span(clock, histogram) as span:
            clock.advance(30.0)
        assert span.elapsed == 30.0
        assert histogram.counts == [0, 1, 0]

    def test_registry_span_helper(self):
        clock = VirtualClock()
        registry = MetricsRegistry()
        with registry.span("stage_seconds", clock, stage="s"):
            clock.advance(2.0)
        histogram = registry.histogram("stage_seconds", stage="s")
        assert histogram.count == 1
        assert histogram.sum == pytest.approx(2.0)

    def test_zero_elapsed_without_clock_movement(self):
        clock = VirtualClock()
        with Span(clock) as span:
            pass
        assert span.elapsed == 0.0
