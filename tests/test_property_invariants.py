"""Cross-cutting property tests over the substrates.

Each property pins an invariant several modules rely on, checked
against a brute-force reference implementation where one exists.
"""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipv6 import address as addrmod
from repro.ipv6.aggregation import PrefixAggregator
from repro.net.clock import VirtualClock
from repro.scan.ethics import OptOutList
from repro.scan.ratelimit import TokenBucket
from repro.world.tga import train

ADDRESSES = st.integers(min_value=0, max_value=2**128 - 1)


class TestOptOutProperties:
    @given(st.lists(st.tuples(ADDRESSES,
                              st.integers(min_value=0, max_value=128)),
                    max_size=15),
           ADDRESSES)
    def test_blocked_matches_bruteforce(self, entries, probe):
        """Fast prefix-set membership == linear prefix comparison."""
        opt_out = OptOutList()
        for base, length in entries:
            opt_out.add(base, length)
        brute = any(
            addrmod.prefix(probe, length) == addrmod.prefix(base, length)
            for base, length in entries)
        assert opt_out.blocked(probe) == brute

    @given(st.lists(ADDRESSES, min_size=1, max_size=10))
    def test_every_entry_blocks_itself(self, bases):
        opt_out = OptOutList()
        for base in bases:
            opt_out.add(base)
        for base in bases:
            assert opt_out.blocked(base)


class TestAggregatorProperties:
    @given(st.lists(ADDRESSES, max_size=60),
           st.sampled_from([32, 48, 56, 64]))
    def test_network_counts_match_bruteforce(self, values, level):
        aggregator = PrefixAggregator()
        aggregator.update(values)
        brute = {addrmod.prefix(value, level) for value in set(values)}
        assert aggregator.network_count(level) == len(brute)
        counts = aggregator.network_counts(level)
        assert sum(counts.values()) == len(set(values))

    @given(st.lists(ADDRESSES, min_size=1, max_size=60))
    def test_median_density_bounds(self, values):
        aggregator = PrefixAggregator()
        aggregator.update(values)
        median = aggregator.median_density(48)
        counts = aggregator.network_counts(48).values()
        assert min(counts) <= median <= max(counts)


class TestTokenBucketProperties:
    @given(st.lists(st.floats(min_value=0.1, max_value=5.0),
                    min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_throughput_never_exceeds_rate_plus_burst(self, amounts):
        """Total tokens granted <= burst + rate * elapsed."""
        clock = VirtualClock()
        rate, burst = 7.0, 10.0
        bucket = TokenBucket(clock, rate=rate, burst=burst)
        granted = 0.0
        for amount in amounts:
            bucket.acquire(amount)
            granted += amount
        assert granted <= burst + rate * clock.now() + 1e-6

    @given(st.floats(min_value=0.1, max_value=10.0))
    def test_try_acquire_never_goes_negative(self, amount):
        bucket = TokenBucket(VirtualClock(), rate=1.0, burst=5.0)
        while bucket.try_acquire(amount):
            pass
        assert bucket.available >= 0.0


class TestTgaProperties:
    @given(st.lists(ADDRESSES, min_size=2, max_size=40, unique=True),
           st.integers(min_value=1, max_value=30))
    @settings(max_examples=30)
    def test_candidates_distinct_and_disjoint_from_seeds(self, seeds, count):
        tga = train(seeds)
        candidates = tga.generate(count)
        assert len(candidates) == len(set(candidates))
        assert not set(candidates) & set(seeds)

    @given(st.lists(ADDRESSES, min_size=2, max_size=30, unique=True))
    @settings(max_examples=30)
    def test_prefix_lock_respected(self, seeds):
        tga = train(seeds)
        locked = {addrmod.prefix(seed, 56) for seed in seeds}
        for candidate in tga.generate(20, prefix_lock=56):
            assert addrmod.prefix(candidate, 56) in locked

    @given(st.lists(ADDRESSES, min_size=1, max_size=30, unique=True))
    @settings(max_examples=30)
    def test_entropy_nonnegative_and_bounded(self, seeds):
        tga = train(seeds)
        for model in tga.models:
            assert 0.0 <= model.entropy <= 4.0 + 1e-9


class TestShardingProperties:
    """The partition/merge contract the parallel backend stands on."""

    @given(ADDRESSES, st.integers(min_value=1, max_value=64))
    def test_shard_of_stable_and_in_range(self, address, shards):
        from repro.runtime.sharding import shard_of

        index = shard_of(address, shards)
        assert 0 <= index < shards
        assert index == shard_of(address, shards)

    @given(st.integers(min_value=0, max_value=2**64 - 1),
           st.one_of(st.sampled_from([1, 2, 4, 0x10, 0x100, 0x10000,
                                      1 << 20, 1 << 32, 1 << 48]),
                     st.integers(min_value=1, max_value=2**16)),
           st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=80)
    def test_no_empty_shard_for_structured_addresses(self, prefix, stride,
                                                     start):
        """64 same-/64 addresses with strided IIDs hit every one of 4
        shards.  This pins the full SplitMix64 finalizer: the weaker
        single-multiply hash parked all 2^32-strided addresses on one
        shard."""
        from repro.runtime.sharding import shard_of

        base = prefix << 64
        mask = (1 << 64) - 1
        occupied = {shard_of(base | ((start + index * stride) & mask), 4)
                    for index in range(64)}
        assert occupied == {0, 1, 2, 3}

    @given(st.lists(ADDRESSES, max_size=200),
           st.integers(min_value=1, max_value=8))
    def test_partition_preserves_multiset_and_routing(self, targets, shards):
        from repro.runtime.sharding import shard_of
        from repro.runtime.snapshot import targets_by_shard

        partition = targets_by_shard(targets, shards)
        assert len(partition) == shards
        rejoined = [target for batch in partition for target in batch]
        assert sorted(rejoined) == sorted(targets)
        for index, batch in enumerate(partition):
            assert all(shard_of(target, shards) == index
                       for target in batch)
            # Arrival order is preserved within each shard.
            expected = [t for t in targets if shard_of(t, shards) == index]
            assert batch == expected


class TestMergedResultsProperties:
    """ScanResults.merged over disjoint shards: associative, and
    aggregate-insensitive to merge order."""

    @staticmethod
    def _sharded_results(entries, shards):
        from repro.runtime.sharding import shard_of
        from repro.scan.result import CoapGrab, ScanResults

        parts = [ScanResults(label=f"shard{i}") for i in range(shards)]
        for address, ok in entries:
            part = parts[shard_of(address, shards)]
            part.coap.append(CoapGrab(address=address, time=0.0, ok=ok))
            part.targets_seen += 1
        return parts

    ENTRIES = st.lists(st.tuples(ADDRESSES, st.booleans()), max_size=60)

    @given(ENTRIES, st.integers(min_value=2, max_value=6))
    @settings(max_examples=60)
    def test_merged_is_associative(self, entries, shards):
        from repro.scan.result import ScanResults

        parts = self._sharded_results(entries, shards)
        flat = ScanResults.merged(parts, label="m")
        nested = ScanResults.merged(
            [ScanResults.merged(parts[:2]), *parts[2:]], label="m")
        assert nested.coap == flat.coap
        assert nested.targets_seen == flat.targets_seen
        assert nested.label == flat.label

    @given(ENTRIES, st.integers(min_value=2, max_value=6),
           st.randoms(use_true_random=False))
    @settings(max_examples=60)
    def test_merge_order_cannot_change_aggregates(self, entries, shards,
                                                  rng):
        """Disjoint shards: any merge order yields the same responsive
        sets, counts and hit rate (bucket order may differ)."""
        from repro.scan.result import ScanResults

        parts = self._sharded_results(entries, shards)
        shuffled = list(parts)
        rng.shuffle(shuffled)
        ordered = ScanResults.merged(parts, label="m")
        permuted = ScanResults.merged(shuffled, label="m")
        assert permuted.targets_seen == ordered.targets_seen
        assert (permuted.responsive_addresses("coap")
                == ordered.responsive_addresses("coap"))
        assert len(permuted.coap) == len(ordered.coap)
        assert sorted(g.address for g in permuted.coap) == \
            sorted(g.address for g in ordered.coap)
        assert permuted.hit_rate() == ordered.hit_rate()


class TestDeterminismProperties:
    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_world_pure_function_of_seed(self, seed):
        from repro.world.population import WorldConfig, build_world

        first = build_world(WorldConfig(seed=seed, scale=0.02))
        second = build_world(WorldConfig(seed=seed, scale=0.02))
        assert [d.address for d in first.devices] == \
            [d.address for d in second.devices]
        assert first.dns.names() == second.dns.names()
