"""Cross-cutting property tests over the substrates.

Each property pins an invariant several modules rely on, checked
against a brute-force reference implementation where one exists.
"""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipv6 import address as addrmod
from repro.ipv6.aggregation import PrefixAggregator
from repro.net.clock import VirtualClock
from repro.scan.ethics import OptOutList
from repro.scan.ratelimit import TokenBucket
from repro.world.tga import train

ADDRESSES = st.integers(min_value=0, max_value=2**128 - 1)


class TestOptOutProperties:
    @given(st.lists(st.tuples(ADDRESSES,
                              st.integers(min_value=0, max_value=128)),
                    max_size=15),
           ADDRESSES)
    def test_blocked_matches_bruteforce(self, entries, probe):
        """Fast prefix-set membership == linear prefix comparison."""
        opt_out = OptOutList()
        for base, length in entries:
            opt_out.add(base, length)
        brute = any(
            addrmod.prefix(probe, length) == addrmod.prefix(base, length)
            for base, length in entries)
        assert opt_out.blocked(probe) == brute

    @given(st.lists(ADDRESSES, min_size=1, max_size=10))
    def test_every_entry_blocks_itself(self, bases):
        opt_out = OptOutList()
        for base in bases:
            opt_out.add(base)
        for base in bases:
            assert opt_out.blocked(base)


class TestAggregatorProperties:
    @given(st.lists(ADDRESSES, max_size=60),
           st.sampled_from([32, 48, 56, 64]))
    def test_network_counts_match_bruteforce(self, values, level):
        aggregator = PrefixAggregator()
        aggregator.update(values)
        brute = {addrmod.prefix(value, level) for value in set(values)}
        assert aggregator.network_count(level) == len(brute)
        counts = aggregator.network_counts(level)
        assert sum(counts.values()) == len(set(values))

    @given(st.lists(ADDRESSES, min_size=1, max_size=60))
    def test_median_density_bounds(self, values):
        aggregator = PrefixAggregator()
        aggregator.update(values)
        median = aggregator.median_density(48)
        counts = aggregator.network_counts(48).values()
        assert min(counts) <= median <= max(counts)


class TestTokenBucketProperties:
    @given(st.lists(st.floats(min_value=0.1, max_value=5.0),
                    min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_throughput_never_exceeds_rate_plus_burst(self, amounts):
        """Total tokens granted <= burst + rate * elapsed."""
        clock = VirtualClock()
        rate, burst = 7.0, 10.0
        bucket = TokenBucket(clock, rate=rate, burst=burst)
        granted = 0.0
        for amount in amounts:
            bucket.acquire(amount)
            granted += amount
        assert granted <= burst + rate * clock.now() + 1e-6

    @given(st.floats(min_value=0.1, max_value=10.0))
    def test_try_acquire_never_goes_negative(self, amount):
        bucket = TokenBucket(VirtualClock(), rate=1.0, burst=5.0)
        while bucket.try_acquire(amount):
            pass
        assert bucket.available >= 0.0


class TestTgaProperties:
    @given(st.lists(ADDRESSES, min_size=2, max_size=40, unique=True),
           st.integers(min_value=1, max_value=30))
    @settings(max_examples=30)
    def test_candidates_distinct_and_disjoint_from_seeds(self, seeds, count):
        tga = train(seeds)
        candidates = tga.generate(count)
        assert len(candidates) == len(set(candidates))
        assert not set(candidates) & set(seeds)

    @given(st.lists(ADDRESSES, min_size=2, max_size=30, unique=True))
    @settings(max_examples=30)
    def test_prefix_lock_respected(self, seeds):
        tga = train(seeds)
        locked = {addrmod.prefix(seed, 56) for seed in seeds}
        for candidate in tga.generate(20, prefix_lock=56):
            assert addrmod.prefix(candidate, 56) in locked

    @given(st.lists(ADDRESSES, min_size=1, max_size=30, unique=True))
    @settings(max_examples=30)
    def test_entropy_nonnegative_and_bounded(self, seeds):
        tga = train(seeds)
        for model in tga.models:
            assert 0.0 <= model.entropy <= 4.0 + 1e-9


class TestDeterminismProperties:
    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_world_pure_function_of_seed(self, seed):
        from repro.world.population import WorldConfig, build_world

        first = build_world(WorldConfig(seed=seed, scale=0.02))
        second = build_world(WorldConfig(seed=seed, scale=0.02))
        assert [d.address for d in first.devices] == \
            [d.address for d in second.devices]
        assert first.dns.names() == second.dns.names()
