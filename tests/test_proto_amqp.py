"""Unit tests for the AMQP 0-9-1 surface."""

import pytest

from repro.proto.amqp import (
    ACCESS_REFUSED,
    PROTOCOL_HEADER,
    AmqpBrokerSession,
    AmqpDecodeError,
    ConnectionClose,
    ConnectionStart,
    ConnectionStartOk,
    ConnectionTune,
    decode_frame,
    encode_frame,
    parse_method,
)


class TestFraming:
    def test_roundtrip(self):
        frame = encode_frame(0, b"payload")
        frame_type, channel, payload = decode_frame(frame)
        assert (frame_type, channel, payload) == (1, 0, b"payload")

    def test_missing_end_octet(self):
        frame = bytearray(encode_frame(0, b"x"))
        frame[-1] = 0x00
        with pytest.raises(AmqpDecodeError):
            decode_frame(bytes(frame))

    def test_truncated(self):
        with pytest.raises(AmqpDecodeError):
            decode_frame(encode_frame(0, b"abcdef")[:-3])


class TestMethods:
    def test_start_roundtrip(self):
        start = ConnectionStart(product="SimRabbit 3.12",
                                mechanisms=("PLAIN", "ANONYMOUS"))
        decoded = parse_method(start.encode())
        assert decoded == start

    def test_start_ok_roundtrip(self):
        start_ok = ConnectionStartOk(mechanism="ANONYMOUS")
        assert parse_method(start_ok.encode()) == start_ok

    def test_tune_roundtrip(self):
        tune = ConnectionTune(channel_max=100, frame_max=4096)
        assert parse_method(tune.encode()) == tune

    def test_close_roundtrip(self):
        close = ConnectionClose(reply_code=ACCESS_REFUSED,
                                reply_text="ACCESS_REFUSED")
        assert parse_method(close.encode()) == close

    def test_unknown_method_rejected(self):
        import struct
        payload = struct.pack("!HH", 99, 99)
        with pytest.raises(AmqpDecodeError):
            parse_method(encode_frame(0, payload))


class TestBrokerSession:
    def test_header_then_start(self):
        session = AmqpBrokerSession(require_auth=False)
        reply = session.on_data(PROTOCOL_HEADER)
        start = parse_method(reply)
        assert isinstance(start, ConnectionStart)
        assert "ANONYMOUS" in start.mechanisms

    def test_secured_broker_offers_plain_only(self):
        session = AmqpBrokerSession(require_auth=True)
        start = parse_method(session.on_data(PROTOCOL_HEADER))
        assert start.mechanisms == ("PLAIN",)

    def test_open_broker_tunes_anonymous(self):
        session = AmqpBrokerSession(require_auth=False)
        session.on_data(PROTOCOL_HEADER)
        reply = session.on_data(ConnectionStartOk(mechanism="ANONYMOUS").encode())
        assert isinstance(parse_method(reply), ConnectionTune)

    def test_secured_broker_closes_anonymous(self):
        session = AmqpBrokerSession(require_auth=True)
        session.on_data(PROTOCOL_HEADER)
        reply = session.on_data(ConnectionStartOk(mechanism="ANONYMOUS").encode())
        close = parse_method(reply)
        assert isinstance(close, ConnectionClose)
        assert close.reply_code == ACCESS_REFUSED
        assert session.closed

    def test_wrong_header_echoes_and_closes(self):
        session = AmqpBrokerSession(require_auth=False)
        reply = session.on_data(b"GET / HTTP/1.1\r\n\r\n")
        assert reply == PROTOCOL_HEADER
        assert session.closed

    def test_product_advertised(self):
        session = AmqpBrokerSession(require_auth=False, product="TestBroker")
        start = parse_method(session.on_data(PROTOCOL_HEADER))
        assert start.product == "TestBroker"
