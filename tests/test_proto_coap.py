"""Unit tests for the RFC 7252 CoAP codec and resource server."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.packet import Datagram
from repro.proto.coap import (
    ACK,
    CON,
    CONTENT_205,
    GET,
    NOT_FOUND_404,
    CoapDecodeError,
    CoapMessage,
    CoapResourceServer,
    encode_link_format,
    get_request,
    parse_link_format,
)


class TestCodec:
    def test_minimal_roundtrip(self):
        message = CoapMessage(mtype=CON, code=GET, message_id=7,
                              token=b"\x01")
        decoded = CoapMessage.decode(message.encode())
        assert decoded.mtype == CON
        assert decoded.code == GET
        assert decoded.message_id == 7
        assert decoded.token == b"\x01"

    def test_uri_path_options(self):
        request = get_request("/qlink/status", message_id=1)
        decoded = CoapMessage.decode(request.encode())
        assert decoded.uri_path == "/qlink/status"

    def test_payload_marker(self):
        message = CoapMessage(code=CONTENT_205, payload=b"data")
        decoded = CoapMessage.decode(message.encode())
        assert decoded.payload == b"data"

    def test_extended_option_lengths(self):
        # A path segment longer than 12 bytes needs the 13+ext encoding.
        long_segment = "x" * 200
        request = get_request(f"/{long_segment}", message_id=2)
        decoded = CoapMessage.decode(request.encode())
        assert decoded.uri_path == f"/{long_segment}"

    def test_token_too_long_rejected_on_encode(self):
        with pytest.raises(ValueError):
            CoapMessage(token=b"123456789").encode()

    def test_decode_rejects_short(self):
        with pytest.raises(CoapDecodeError):
            CoapMessage.decode(b"\x40\x01")

    def test_decode_rejects_wrong_version(self):
        raw = bytearray(CoapMessage().encode())
        raw[0] = (raw[0] & 0x3F) | (2 << 6)
        with pytest.raises(CoapDecodeError):
            CoapMessage.decode(bytes(raw))

    def test_decode_rejects_reserved_token_length(self):
        raw = bytearray(CoapMessage().encode())
        raw[0] = (raw[0] & 0xF0) | 0x0F
        with pytest.raises(CoapDecodeError):
            CoapMessage.decode(bytes(raw))

    @given(
        message_id=st.integers(0, 0xFFFF),
        token=st.binary(max_size=8),
        segments=st.lists(
            st.text(alphabet="abcdefghij", min_size=1, max_size=30),
            min_size=0, max_size=4),
    )
    def test_roundtrip_property(self, message_id, token, segments):
        path = "/" + "/".join(segments)
        request = get_request(path, message_id=message_id, token=token)
        decoded = CoapMessage.decode(request.encode())
        assert decoded.message_id == message_id
        assert decoded.token == token
        assert decoded.uri_path == (path if segments else "/")


class TestLinkFormat:
    def test_roundtrip(self):
        resources = ["/castDeviceSearch", "/qlink/reg"]
        assert parse_link_format(encode_link_format(resources)) == resources

    def test_parse_with_attributes(self):
        payload = b'</sensors/temp>;rt="temperature";ct=0,</config>'
        assert parse_link_format(payload) == ["/sensors/temp", "/config"]

    def test_parse_empty(self):
        assert parse_link_format(b"") == []


class TestResourceServer:
    def _ask(self, server, path, message_id=9):
        request = get_request(path, message_id=message_id)
        datagram = Datagram(src=1, src_port=5000, dst=2, dst_port=5683,
                            payload=request.encode())
        raw = server(datagram)
        return CoapMessage.decode(raw) if raw is not None else None

    def test_well_known_core(self):
        server = CoapResourceServer(["/castDeviceSearch", "/castSetup"])
        response = self._ask(server, "/.well-known/core")
        assert response.code == CONTENT_205
        assert response.mtype == ACK
        assert parse_link_format(response.payload) == \
            ["/castDeviceSearch", "/castSetup"]

    def test_mid_and_token_mirrored(self):
        server = CoapResourceServer(["/a"])
        response = self._ask(server, "/.well-known/core", message_id=77)
        assert response.message_id == 77

    def test_known_resource(self):
        server = CoapResourceServer(["/a"], payloads={"/a": b"value"})
        response = self._ask(server, "/a")
        assert response.code == CONTENT_205
        assert response.payload == b"value"

    def test_unknown_resource_404(self):
        server = CoapResourceServer(["/a"])
        response = self._ask(server, "/nope")
        assert response.code == NOT_FOUND_404

    def test_garbage_ignored(self):
        server = CoapResourceServer(["/a"])
        datagram = Datagram(src=1, src_port=5000, dst=2, dst_port=5683,
                            payload=b"\x00")
        assert server(datagram) is None

    def test_non_get_ignored(self):
        server = CoapResourceServer(["/a"])
        message = CoapMessage(code=CONTENT_205, message_id=1)
        datagram = Datagram(src=1, src_port=5000, dst=2, dst_port=5683,
                            payload=message.encode())
        assert server(datagram) is None
