"""Unit tests for the HTTP codec and server session."""

import pytest

from repro.proto.http import (
    HttpDecodeError,
    HttpRequest,
    HttpResponse,
    HttpServerSession,
    html_page,
)


class TestRequestCodec:
    def test_roundtrip(self):
        request = HttpRequest(method="GET", path="/",
                              headers={"User-Agent": "x"})
        decoded = HttpRequest.decode(request.encode())
        assert decoded.method == "GET"
        assert decoded.path == "/"
        assert decoded.headers["User-Agent"] == "x"

    def test_decode_rejects_garbage(self):
        with pytest.raises(HttpDecodeError):
            HttpRequest.decode(b"\x16\x03\x03\x00\x00")

    def test_decode_rejects_bad_header(self):
        with pytest.raises(HttpDecodeError):
            HttpRequest.decode(b"GET / HTTP/1.1\r\nbroken\r\n\r\n")

    def test_header_names_titlecased(self):
        decoded = HttpRequest.decode(b"GET / HTTP/1.1\r\nhost: a\r\n\r\n")
        assert decoded.headers == {"Host": "a"}


class TestResponseCodec:
    def test_roundtrip(self):
        response = HttpResponse(status=200, headers={"Server": "s"},
                                body=b"hi")
        decoded = HttpResponse.decode(response.encode())
        assert decoded.status == 200
        assert decoded.headers["Server"] == "s"
        assert decoded.body == b"hi"

    def test_content_length_added(self):
        raw = HttpResponse(status=200, body=b"abcd").encode()
        assert b"Content-Length: 4" in raw

    def test_decode_rejects_garbage(self):
        with pytest.raises(HttpDecodeError):
            HttpResponse.decode(b"not http at all")

    def test_decode_rejects_bad_status(self):
        with pytest.raises(HttpDecodeError):
            HttpResponse.decode(b"HTTP/1.1 abc OK\r\n\r\n")

    def test_title_extraction(self):
        response = HttpResponse(status=200, body=html_page("FRITZ!Box"))
        assert response.title == "FRITZ!Box"

    def test_title_none_when_absent(self):
        response = HttpResponse(status=200, body=b"<html></html>")
        assert response.title is None

    def test_title_whitespace_normalized(self):
        response = HttpResponse(
            status=200, body=b"<title>\n  A \t B  </title>")
        assert response.title == "A B"

    def test_title_case_insensitive_tag(self):
        response = HttpResponse(status=200, body=b"<TITLE>x</TITLE>")
        assert response.title == "x"


class TestServerSession:
    def _get(self, session, path="/", headers=None):
        request = HttpRequest(method="GET", path=path, headers=headers or {})
        return HttpResponse.decode(session.on_data(request.encode()))

    def test_serves_title(self):
        session = HttpServerSession("D-LINK")
        response = self._get(session)
        assert response.status == 200
        assert response.title == "D-LINK"

    def test_serves_server_header(self):
        session = HttpServerSession("x", server="AVM FRITZ!Box")
        assert self._get(session).headers["Server"] == "AVM FRITZ!Box"

    def test_none_title_empty_body(self):
        session = HttpServerSession(None)
        response = self._get(session)
        assert response.status == 200
        assert response.title is None

    def test_requires_host_yields_unknown_domain(self):
        session = HttpServerSession("real", requires_host=True)
        response = self._get(session)
        assert response.status == 404
        assert response.title == "Unknown Domain"

    def test_requires_host_with_host_serves_page(self):
        session = HttpServerSession("real", requires_host=True)
        response = self._get(session, headers={"Host": "example.sim"})
        assert response.status == 200
        assert response.title == "real"

    def test_head_request_no_body(self):
        session = HttpServerSession("x")
        request = HttpRequest(method="HEAD", path="/")
        response = HttpResponse.decode(session.on_data(request.encode()))
        assert response.body == b""

    def test_garbage_yields_400_and_close(self):
        session = HttpServerSession("x")
        response = HttpResponse.decode(session.on_data(b"\x00\x01\x02"))
        assert response.status == 400
        assert session.closed

    def test_connection_closes_after_response(self):
        session = HttpServerSession("x")
        self._get(session)
        assert session.closed
