"""Unit tests for the MQTT 3.1.1 codec and broker session."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.proto.mqtt import (
    ACCEPTED,
    REFUSED_BAD_CREDENTIALS,
    REFUSED_NOT_AUTHORIZED,
    ConnackPacket,
    ConnectPacket,
    MqttBrokerSession,
    MqttDecodeError,
    decode_varint,
    encode_varint,
)


class TestVarint:
    @pytest.mark.parametrize("value,encoded", [
        (0, b"\x00"),
        (127, b"\x7f"),
        (128, b"\x80\x01"),
        (16383, b"\xff\x7f"),
        (268435455, b"\xff\xff\xff\x7f"),
    ])
    def test_spec_vectors(self, value, encoded):
        assert encode_varint(value) == encoded
        assert decode_varint(encoded) == (value, len(encoded))

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            encode_varint(268435456)
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated(self):
        with pytest.raises(MqttDecodeError):
            decode_varint(b"\x80")

    @given(st.integers(min_value=0, max_value=268435455))
    def test_roundtrip(self, value):
        encoded = encode_varint(value)
        assert decode_varint(encoded) == (value, len(encoded))


class TestConnectCodec:
    def test_anonymous_roundtrip(self):
        packet = ConnectPacket(client_id="scan")
        decoded = ConnectPacket.decode(packet.encode())
        assert decoded.client_id == "scan"
        assert decoded.username is None
        assert decoded.password is None
        assert decoded.clean_session

    def test_credentials_roundtrip(self):
        packet = ConnectPacket(client_id="c", username="u", password="p",
                               keepalive=30)
        decoded = ConnectPacket.decode(packet.encode())
        assert (decoded.username, decoded.password) == ("u", "p")
        assert decoded.keepalive == 30

    def test_password_without_username_rejected(self):
        with pytest.raises(ValueError):
            ConnectPacket(client_id="c", password="p").encode()

    def test_wrong_packet_type_rejected(self):
        with pytest.raises(MqttDecodeError):
            ConnectPacket.decode(b"\x20\x02\x00\x00")

    def test_wrong_protocol_level_rejected(self):
        raw = bytearray(ConnectPacket(client_id="c").encode())
        raw[8] = 3  # protocol level byte
        with pytest.raises(MqttDecodeError):
            ConnectPacket.decode(bytes(raw))

    @given(client_id=st.text(max_size=20),
           username=st.one_of(st.none(), st.text(max_size=10)))
    def test_roundtrip_property(self, client_id, username):
        packet = ConnectPacket(client_id=client_id, username=username)
        decoded = ConnectPacket.decode(packet.encode())
        assert decoded.client_id == client_id
        assert decoded.username == username


class TestConnackCodec:
    def test_roundtrip(self):
        packet = ConnackPacket(return_code=5, session_present=True)
        decoded = ConnackPacket.decode(packet.encode())
        assert decoded == packet

    def test_accepted_property(self):
        assert ConnackPacket(return_code=ACCEPTED).accepted
        assert not ConnackPacket(return_code=5).accepted

    def test_rejects_wrong_type(self):
        with pytest.raises(MqttDecodeError):
            ConnackPacket.decode(ConnectPacket(client_id="x").encode())


class TestBrokerSession:
    def test_open_broker_accepts_anonymous(self):
        session = MqttBrokerSession(require_auth=False)
        reply = session.on_data(ConnectPacket(client_id="scan").encode())
        assert ConnackPacket.decode(reply).return_code == ACCEPTED

    def test_secured_broker_refuses_anonymous(self):
        session = MqttBrokerSession(require_auth=True)
        reply = session.on_data(ConnectPacket(client_id="scan").encode())
        assert ConnackPacket.decode(reply).return_code == \
            REFUSED_NOT_AUTHORIZED
        assert session.closed

    def test_secured_broker_rejects_wrong_credentials(self):
        session = MqttBrokerSession(require_auth=True)
        packet = ConnectPacket(client_id="c", username="u", password="guess")
        reply = session.on_data(packet.encode())
        assert ConnackPacket.decode(reply).return_code == \
            REFUSED_BAD_CREDENTIALS

    def test_secured_broker_accepts_right_credentials(self):
        session = MqttBrokerSession(require_auth=True, username="u",
                                    password="p")
        packet = ConnectPacket(client_id="c", username="u", password="p")
        reply = session.on_data(packet.encode())
        assert ConnackPacket.decode(reply).return_code == ACCEPTED

    def test_garbage_closes_silently(self):
        session = MqttBrokerSession(require_auth=False)
        assert session.on_data(b"GET / HTTP/1.1\r\n\r\n") is None
        assert session.closed
