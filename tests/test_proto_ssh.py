"""Unit tests for the SSH surface: ID strings, key replies, OS extraction."""

import pytest

from repro.proto.ssh import (
    SshDecodeError,
    SshIdentification,
    SshServerSession,
    banner_for,
    debian_patch_level,
    decode_keyreply,
    encode_keyreply,
    extract_os,
)
from repro.tlslib.keys import derive_key


class TestIdentification:
    def test_roundtrip_with_comment(self):
        ident = SshIdentification("2.0", "OpenSSH_9.2p1", "Debian-2+deb12u3")
        decoded = SshIdentification.decode(ident.encode())
        assert decoded == ident

    def test_roundtrip_without_comment(self):
        ident = SshIdentification("2.0", "OpenSSH_9.6")
        assert SshIdentification.decode(ident.encode()) == ident

    def test_banner_string(self):
        ident = SshIdentification("2.0", "OpenSSH_9.2p1", "Debian-2")
        assert ident.banner == "SSH-2.0-OpenSSH_9.2p1 Debian-2"

    def test_decode_tolerates_lf_only(self):
        decoded = SshIdentification.decode(b"SSH-2.0-Foo\n")
        assert decoded.software == "Foo"

    def test_decode_rejects_garbage(self):
        with pytest.raises(SshDecodeError):
            SshIdentification.decode(b"HTTP/1.1 200 OK\r\n")

    def test_banner_for(self):
        assert banner_for("OpenSSH_9.6").protocol == "2.0"


class TestKeyReply:
    def test_roundtrip(self):
        key = derive_key("host-1", "ssh-ed25519")
        decoded = decode_keyreply(encode_keyreply(key))
        assert decoded == key

    def test_rejects_missing_magic(self):
        with pytest.raises(SshDecodeError):
            decode_keyreply(b"XXXX\x00\x01a\x00\x01b")

    def test_rejects_truncated(self):
        key = derive_key("host-1")
        raw = encode_keyreply(key)
        with pytest.raises(SshDecodeError):
            decode_keyreply(raw[:-5])


class TestServerSession:
    def test_greeting_then_keys(self):
        key = derive_key("host-x")
        session = SshServerSession(
            banner_for("OpenSSH_9.2p1", "Debian-2+deb12u3"), key)
        assert session.greeting().startswith(b"SSH-2.0-OpenSSH_9.2p1")
        reply = session.on_data(b"SSH-2.0-Scanner\r\n")
        assert decode_keyreply(reply) == key

    def test_garbage_client_hello_closes(self):
        session = SshServerSession(banner_for("OpenSSH_9.6"), derive_key("k"))
        assert session.on_data(b"\x00\x01") is None
        assert session.closed


class TestOsExtraction:
    @pytest.mark.parametrize("software,comment,expected", [
        ("OpenSSH_9.6p1", "Ubuntu-3ubuntu13.5", "Ubuntu"),
        ("OpenSSH_9.2p1", "Debian-2+deb12u3", "Debian"),
        ("OpenSSH_9.2p1", "Raspbian-2+deb12u2", "Raspbian"),
        ("OpenSSH_9.6", "FreeBSD-20240318", "FreeBSD"),
        ("OpenSSH_9.6", "NetBSD_Secure_Shell", "NetBSD"),
        ("OpenSSH_9.6", None, "other/unknown"),
        ("dropbear_2022.83", None, "other/unknown"),
    ])
    def test_extract(self, software, comment, expected):
        ident = SshIdentification("2.0", software, comment)
        assert extract_os(ident) == expected

    def test_raspbian_before_debian(self):
        """Raspbian banners contain 'deb' strings; Raspbian must win."""
        ident = SshIdentification("2.0", "OpenSSH_9.2p1",
                                  "Raspbian-2+deb12u1")
        assert extract_os(ident) == "Raspbian"


class TestPatchLevel:
    def test_debian_patch(self):
        ident = SshIdentification("2.0", "OpenSSH_9.2p1", "Debian-2+deb12u3")
        assert debian_patch_level(ident) == ("9.2p1", "2+deb12u3")

    def test_ubuntu_patch(self):
        ident = SshIdentification("2.0", "OpenSSH_9.6p1",
                                  "Ubuntu-3ubuntu13.5")
        assert debian_patch_level(ident) == ("9.6p1", "3ubuntu13.5")

    def test_freebsd_hides_patch(self):
        ident = SshIdentification("2.0", "OpenSSH_9.6", "FreeBSD-20240318")
        assert debian_patch_level(ident) is None

    def test_bare_openssh_hides_patch(self):
        ident = SshIdentification("2.0", "OpenSSH_9.6")
        assert debian_patch_level(ident) is None
