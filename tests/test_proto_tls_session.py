"""Tests for TLS-wrapped sessions (the HTTPS/MQTTS/AMQPS plumbing)."""

import pytest

from repro.proto.http import HttpRequest, HttpResponse, HttpServerSession
from repro.proto.mqtt import ACCEPTED, ConnackPacket, ConnectPacket, MqttBrokerSession
from repro.proto.ssh import SshIdentification, SshServerSession
from repro.proto.tls_session import PlainService, TlsService, TlsWrappedSession
from repro.tlslib.certificate import issue_self_signed
from repro.tlslib.handshake import (
    ALERT_HANDSHAKE_FAILURE,
    RECORD_ALERT,
    TlsTerminator,
    client_hello,
)
from repro.tlslib.keys import derive_key


@pytest.fixture()
def terminator():
    return TlsTerminator(issue_self_signed("device.sim"))


class TestTlsWrappedSession:
    def test_handshake_then_inner_protocol(self, terminator):
        session = TlsWrappedSession(
            terminator, MqttBrokerSession(require_auth=False))
        flight = session.on_data(client_hello(None))
        assert flight[0] == 22  # handshake record
        connack = session.on_data(ConnectPacket(client_id="x").encode())
        assert ConnackPacket.decode(connack).return_code == ACCEPTED

    def test_non_tls_first_write_alerts_and_closes(self, terminator):
        session = TlsWrappedSession(
            terminator, MqttBrokerSession(require_auth=False))
        response = session.on_data(b"GET / HTTP/1.1\r\n\r\n")
        assert response[0] == RECORD_ALERT
        assert response[-1] == ALERT_HANDSHAKE_FAILURE
        assert session.closed

    def test_inner_greeting_delivered_with_server_flight(self, terminator):
        banner_session = SshServerSession(
            SshIdentification("2.0", "OpenSSH_9.6"), derive_key("k"))
        session = TlsWrappedSession(terminator, banner_session)
        flight = session.on_data(client_hello(None))
        assert flight.endswith(b"SSH-2.0-OpenSSH_9.6\r\n")

    def test_inner_close_propagates(self, terminator):
        inner = HttpServerSession("Page")
        session = TlsWrappedSession(terminator, inner)
        session.on_data(client_hello(None))
        raw = session.on_data(HttpRequest("GET", "/").encode())
        assert HttpResponse.decode(raw).title == "Page"
        assert session.closed  # HTTP closes after one response

    def test_no_greeting_before_client_hello(self, terminator):
        session = TlsWrappedSession(terminator, HttpServerSession("x"))
        assert session.greeting() == b""


class TestServiceFactories:
    def test_tls_service_fresh_session_per_accept(self, terminator):
        service = TlsService(terminator,
                             lambda: MqttBrokerSession(require_auth=False))
        first = service.accept(1, 1000)
        second = service.accept(2, 1001)
        assert first is not second
        first.on_data(client_hello(None))
        # second still expects a handshake, unaffected by first's state
        assert second.on_data(client_hello(None))[0] == 22

    def test_plain_service(self):
        service = PlainService(lambda: HttpServerSession("t"))
        session = service.accept(1, 1000)
        raw = session.on_data(HttpRequest("GET", "/").encode())
        assert HttpResponse.decode(raw).title == "t"
