"""Tests for rendering helpers and the SSH release catalogue."""

import pytest

from repro.data import ssh_releases
from repro.report.formatting import (
    fmt_float,
    fmt_int,
    fmt_pct,
    fmt_permille,
    render_table,
    shape_check,
)


class TestFormatting:
    def test_fmt_int_paper_style(self):
        assert fmt_int(3040325302) == "3 040 325 302"
        assert fmt_int(42) == "42"
        assert fmt_int(0) == "0"

    def test_fmt_pct(self):
        assert fmt_pct(0.284) == "28.4 %"
        assert fmt_pct(0.435) == "43.5 %"
        assert fmt_pct(1.0, digits=0) == "100 %"

    def test_fmt_permille(self):
        assert fmt_permille(0.00042) == "0.42 ‰"

    def test_fmt_float(self):
        assert fmt_float(3.14159, 2) == "3.14"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(
            ["name", "count"],
            [["alpha", 10], ["b", 20000]],
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert lines[2].startswith("alpha")
        assert lines[3].rstrip().endswith("20000")

    def test_title(self):
        text = render_table(["a"], [["x"]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only one"]])

    def test_shape_check(self):
        assert shape_check("x", True).startswith("[OK ]")
        assert shape_check("x", False).startswith("[DIVERGES]")


class TestSshReleases:
    def test_latest_patch(self):
        assert ssh_releases.latest_patch("Debian", "9.2p1") == "2+deb12u3"
        assert ssh_releases.latest_patch("Ubuntu", "9.6p1") == "3ubuntu13.5"

    def test_latest_unknown(self):
        assert ssh_releases.latest_patch("Gentoo", "1.0") is None

    def test_is_outdated(self):
        assert ssh_releases.is_outdated("Debian", "9.2p1", "2+deb12u1") is True
        assert ssh_releases.is_outdated("Debian", "9.2p1", "2+deb12u3") is False
        assert ssh_releases.is_outdated("Gentoo", "1.0", "x") is None

    def test_releases_for(self):
        raspbian = ssh_releases.releases_for("Raspbian")
        assert raspbian
        assert all(r.distro == "Raspbian" for r in raspbian)

    def test_banner_helpers(self):
        release = ssh_releases.releases_for("Debian")[0]
        assert release.banner_software() == f"OpenSSH_{release.upstream}"
        assert release.banner_comment("2").startswith("Debian-")

    def test_patch_ordering_latest_last(self):
        for release in ssh_releases.RELEASES:
            assert release.latest == release.patches[-1]
            assert len(set(release.patches)) == len(release.patches)
