"""Tests for the consolidated study report renderer."""


from repro.report.study import (
    render_appendices,
    render_figure1,
    render_full_report,
    render_security,
    render_table1,
    render_table2,
    render_table3,
)


class TestSections:
    def test_table1_contains_datasets(self, experiment):
        text = render_table1(experiment)
        for label in ("ntp", "rl", "hitlist-full", "hitlist-public"):
            assert label in text
        assert "ntp ∩ hitlist-full" in text

    def test_figure1_contains_classes(self, experiment):
        text = render_figure1(experiment)
        assert "high-entropy" in text
        assert "Cable/DSL/ISP" in text

    def test_table2_all_protocols(self, experiment):
        text = render_table2(experiment)
        for protocol in ("http", "https", "ssh", "mqtt", "amqp", "coap"):
            assert protocol in text
        assert "hit rates" in text

    def test_table3_devices(self, experiment):
        text = render_table3(experiment)
        assert "FRITZ!Box" in text
        assert "Raspbian" in text
        assert "castdevice" in text
        assert "missed or underrepresented" in text

    def test_security_headline(self, experiment):
        text = render_security(experiment)
        assert "secure share" in text
        assert "MQTT" in text

    def test_appendices(self, experiment):
        text = render_appendices(experiment)
        assert "AVM" in text
        assert "India" in text
        assert "key reuse" in text
        assert "address lifetimes" in text


class TestFullReport:
    def test_contains_every_section(self, experiment):
        text = render_full_report(experiment)
        for heading in ("Table 1", "Figure 1", "Table 2", "Table 3",
                        "Figures 2-3", "Appendices"):
            assert heading in text

    def test_deterministic(self, experiment):
        assert render_full_report(experiment) == \
            render_full_report(experiment)
