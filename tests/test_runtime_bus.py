"""Unit tests for the runtime event bus, stages, and bounded queues."""

import pytest

from repro.runtime.bus import AddressSighted, EventBus, TargetScanned
from repro.runtime.stage import BoundedQueue, Stage


class TestEventBus:
    def test_publish_delivers_by_type(self):
        bus = EventBus()
        sightings, scans = [], []
        bus.subscribe(AddressSighted, sightings.append)
        bus.subscribe(TargetScanned, scans.append)
        event = AddressSighted(address=1, time=0.0, server_location="DE")
        assert bus.publish(event) == 1
        assert sightings == [event]
        assert scans == []

    def test_delivery_in_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(AddressSighted, lambda e: order.append("first"))
        bus.subscribe(AddressSighted, lambda e: order.append("second"))
        bus.publish(AddressSighted(address=1, time=0.0, server_location="x"))
        assert order == ["first", "second"]

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe(AddressSighted, seen.append)
        unsubscribe()
        assert bus.publish(
            AddressSighted(address=1, time=0.0, server_location="x")) == 0
        assert seen == []
        unsubscribe()  # idempotent

    def test_unheard_events_counted(self):
        bus = EventBus()
        bus.publish(AddressSighted(address=1, time=0.0, server_location="x"))
        assert bus.stats.published == 1
        assert bus.stats.unheard == 1
        assert bus.stats.delivered == 0

    def test_non_event_type_rejected(self):
        with pytest.raises(TypeError):
            EventBus().subscribe(int, lambda e: None)

    def test_handler_may_unsubscribe_during_delivery(self):
        bus = EventBus()
        seen = []
        unsubscribe = None

        def once(event):
            seen.append(event)
            unsubscribe()

        unsubscribe = bus.subscribe(AddressSighted, once)
        for _ in range(2):
            bus.publish(AddressSighted(address=1, time=0.0,
                                       server_location="x"))
        assert len(seen) == 1


class TestBoundedQueue:
    def test_fifo_order(self):
        queue = BoundedQueue(3)
        for item in (1, 2, 3):
            assert queue.push(item)
        assert list(queue.drain()) == [1, 2, 3]

    def test_capacity_enforced_with_drop_accounting(self):
        queue = BoundedQueue(2)
        assert queue.push("a") and queue.push("b")
        assert not queue.push("c")
        assert queue.dropped == 1
        assert len(queue) == 2

    def test_drain_limit(self):
        queue = BoundedQueue(4)
        for item in range(4):
            queue.push(item)
        assert list(queue.drain(2)) == [0, 1]
        assert len(queue) == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)


class TestStage:
    def test_attach_and_detach(self):
        class Recorder(Stage):
            name = "recorder"

            def __init__(self):
                super().__init__()
                self.seen = []

            def subscriptions(self):
                return {AddressSighted: self.seen.append}

        bus = EventBus()
        stage = Recorder()
        stage.attach(bus)
        bus.publish(AddressSighted(address=7, time=1.0, server_location="y"))
        assert len(stage.seen) == 1
        stage.detach()
        bus.publish(AddressSighted(address=8, time=2.0, server_location="y"))
        assert len(stage.seen) == 1
