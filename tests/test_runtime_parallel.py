"""The multiprocess shard backend: parity, refusals, crash handling.

Every parity claim goes through :mod:`tests.parity` — the shared
definition of "observationally equivalent" — so this module mostly
exercises what is *specific* to the parallel backend: the picklable
network snapshot, the typed refusals for configurations that would
silently break determinism, worker-death surfacing, and the config/CLI
plumbing of ``parallel_workers``.
"""

import os
from dataclasses import asdict

import pytest

from repro import api, cli
from repro.ipv6 import parse
from repro.net.simnet import Network
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.runtime.parallel import (
    CRASH_ENV,
    ParallelExecutionError,
    ParallelShardedScanEngine,
    WorkerCrashed,
)
from repro.runtime.sharding import ShardedScanEngine, shard_of
from repro.runtime.snapshot import NetworkView, SnapshotError
from repro.scan.engine import EngineConfig, ScanEngine
from repro.scan.result import ScanResults
from repro.store.wal import read_all
from repro.world.population import WorldConfig, build_world
from tests import parity

SOURCE = parse("2001:db8:5ca7::10")

#: Small but protocol-diverse world; fresh replica per call so every
#: execution mode scans identical, untouched state.
WORLD = WorldConfig(seed=20240720, scale=0.02)


def make_world():
    return build_world(WORLD)


@pytest.fixture(scope="module")
def targets():
    """A deterministic target list: every host plus guaranteed misses."""
    world = make_world()
    hosts = sorted(world.network._hosts)
    return hosts + [address ^ 0xDEAD for address in hosts[:40]]


def embedded_config(**overrides):
    defaults = dict(drive_clock=False, seed=0x7E57)
    defaults.update(overrides)
    return EngineConfig(**defaults)


class TestEngineParity:
    def test_parallel_matches_sequential_at_1_2_4_workers(self, targets):
        parity.assert_engine_parity(make_world, targets, SOURCE,
                                    embedded_config(), shards=4)

    def test_parallel_single_shard(self, targets):
        parity.assert_engine_parity(make_world, targets[:60], SOURCE,
                                    embedded_config(), shards=1,
                                    worker_counts=(2,))

    def test_more_shards_than_workers_and_vice_versa(self, targets):
        parity.assert_engine_parity(make_world, targets[:120], SOURCE,
                                    embedded_config(), shards=8,
                                    worker_counts=(2, 4))

    def test_empty_target_list(self):
        world = make_world()
        engine = ParallelShardedScanEngine(
            world.network, SOURCE, embedded_config(), shards=4, workers=2)
        results = engine.run([], label="empty")
        assert results.targets_seen == 0
        assert engine.stats.targets_offered == 0
        assert engine.last_run_timing["targets"] == 0

    def test_cooldown_carries_across_parallel_runs(self, targets):
        """A second parallel run over the same targets is all cool-down
        hits — worker cool-down state merged back correctly."""
        world = make_world()
        batch = targets[:80]
        engine = ParallelShardedScanEngine(
            world.network, SOURCE, embedded_config(), shards=4, workers=2)
        first = engine.run(batch, label="first")
        scanned = engine.stats.targets_scanned
        assert scanned == len(batch)
        second = engine.run(batch, label="second")
        assert engine.stats.targets_scanned == scanned
        assert engine.stats.targets_cooled_down == len(batch)
        assert first.targets_seen == second.targets_seen == len(batch)
        assert all(not second.grabs(p) for p in second.protocols())

    def test_feed_and_scan_address_stay_in_process(self, targets):
        """The per-target contract delegates to the live shard engines
        (the real-time queue's path never pays pool overhead)."""
        world = make_world()
        engine = ParallelShardedScanEngine(
            world.network, SOURCE, embedded_config(), shards=4, workers=2)
        results = ScanResults(label="feed")
        assert engine.feed(targets[0], results)
        assert not engine.feed(targets[0], results)  # cool-down
        assert engine.stats.targets_offered == 2
        grabs = engine.scan_address(targets[1])
        assert len(grabs) == len(list(engine.registry))
        # scan_address bypasses admission, so only the fed target cools.
        assert engine.tracked_targets == 1
        assert engine.engine_for(targets[0]).name == \
            f"engine/shard{shard_of(targets[0], 4)}"

    def test_timing_report_shape(self, targets):
        world = make_world()
        engine = ParallelShardedScanEngine(
            world.network, SOURCE, embedded_config(), shards=4, workers=2)
        engine.run(targets[:100], label="timed")
        timing = engine.last_run_timing
        assert timing["workers"] == 2
        assert len(timing["shards"]) == 4
        assert sum(entry["targets"] for entry in timing["shards"]) == 100
        busy = [entry for entry in timing["shards"] if entry["targets"]]
        assert all(entry["wall_seconds"] > 0 for entry in busy)
        assert timing["pool_wall_seconds"] > 0


class TestRefusals:
    def test_driving_mode_refused(self):
        engine = ParallelShardedScanEngine(
            Network(), SOURCE, EngineConfig(drive_clock=True),
            shards=2, workers=2)
        with pytest.raises(ParallelExecutionError, match="drive_clock"):
            engine.run([parse("2001:db8::1")])

    def test_lossy_network_refused(self):
        network = Network(loss_rate=0.2)
        engine = ParallelShardedScanEngine(
            network, SOURCE, embedded_config(), shards=2, workers=2)
        with pytest.raises(ParallelExecutionError, match="loss_rate"):
            engine.run([parse("2001:db8::1")])

    def test_tapped_network_refused(self):
        network = Network()
        network.add_tap(lambda record: None)
        engine = ParallelShardedScanEngine(
            network, SOURCE, embedded_config(), shards=2, workers=2)
        with pytest.raises(ParallelExecutionError, match="tap"):
            engine.run([parse("2001:db8::1")])

    def test_worker_count_validated(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelShardedScanEngine(Network(), SOURCE, embedded_config(),
                                      shards=2, workers=0)

    def test_unpicklable_service_is_a_typed_snapshot_error(self):
        network = Network()
        target = parse("2001:db8:bad::1")
        host = network.add_host(target)
        witness = object()
        host.bind_tcp(80, type("Closure", (), {
            "accept": lambda self, peer, port: witness})())
        engine = ParallelShardedScanEngine(
            network, SOURCE, embedded_config(), shards=2, workers=2)
        with pytest.raises(SnapshotError, match="pickled"):
            engine.run([target])


class TestWorkerCrash:
    def test_worker_death_surfaces_typed_error(self, targets, monkeypatch):
        world = make_world()
        batch = targets[:60]
        engine = ParallelShardedScanEngine(
            world.network, SOURCE, embedded_config(), shards=2, workers=2)
        crash_shard = shard_of(batch[0], 2)
        monkeypatch.setenv(CRASH_ENV, f"{crash_shard}:0")
        with pytest.raises(WorkerCrashed) as excinfo:
            engine.run(batch, label="doomed")
        assert crash_shard in excinfo.value.shards
        # Nothing merged: the parent engines are untouched.
        assert engine.stats.targets_offered == 0
        assert engine.tracked_targets == 0

    def test_crash_cleared_run_succeeds(self, targets, monkeypatch):
        world = make_world()
        engine = ParallelShardedScanEngine(
            world.network, SOURCE, embedded_config(), shards=2, workers=2)
        monkeypatch.delenv(CRASH_ENV, raising=False)
        results = engine.run(targets[:60], label="fine")
        assert results.targets_seen == 60


class TestNetworkView:
    def test_roundtrip_preserves_observable_behaviour(self, targets):
        world = make_world()
        batch = targets[:50]
        view = NetworkView.capture(world.network, batch)
        import pickle

        rebuilt = pickle.loads(pickle.dumps(view)).build()
        assert rebuilt.clock.now() == world.network.clock.now()
        for address in batch:
            original = world.network.host(address)
            replica = rebuilt.host(address)
            if original is None:
                assert replica is None
            else:
                assert replica.reachable == original.reachable
                assert set(replica.tcp_services) == \
                    set(original.tcp_services)
                assert set(replica.udp_handlers) == \
                    set(original.udp_handlers)

    def test_wildcards_survive_capture(self):
        network = Network()
        prefix = parse("2001:db8:a11a::")
        network.add_wildcard_host(prefix)
        inside = [prefix | 1, prefix | 0xFFFF]
        view = NetworkView.capture(network, inside)
        rebuilt = view.build()
        for address in inside:
            assert rebuilt.host(address) is not None
            assert rebuilt.is_wildcard(address)

    def test_uncaptured_targets_answer_with_silence(self):
        network = Network()
        bound = parse("2001:db8::1")
        network.add_host(bound)
        view = NetworkView.capture(network, [bound])
        rebuilt = view.build()
        assert rebuilt.host(parse("2001:db8::2")) is None


class TestConfigAndCli:
    def test_negative_workers_rejected(self):
        from repro.core.pipeline import ExperimentConfig

        with pytest.raises(ValueError, match="parallel_workers"):
            ExperimentConfig(parallel_workers=-1)

    def test_workers_capped_at_cpu_count(self):
        from repro.core.pipeline import ExperimentConfig

        config = ExperimentConfig(parallel_workers=10_000)
        assert config.parallel_workers == (os.cpu_count() or 1)

    def test_config_document_roundtrip(self):
        import json
        from dataclasses import asdict as dc_asdict

        from repro.core.pipeline import (
            ExperimentConfig,
            experiment_config_from_document,
        )

        config = ExperimentConfig(parallel_workers=1, scan_shards=4)
        document = json.loads(json.dumps(dc_asdict(config)))
        assert experiment_config_from_document(document) == config
        # Pre-parallel stores have no parallel_workers field: default 0.
        document.pop("parallel_workers")
        assert experiment_config_from_document(document).parallel_workers == 0

    def test_cli_workers_flag_reaches_config(self, monkeypatch, capsys):
        captured = {}

        def fake_study(config):
            captured["config"] = config
            from repro.obs.runreport import RunReport

            report = RunReport.build("study", {}, MetricsRegistry(), {})
            return api.StudyResult(experiment=None, report=report)

        monkeypatch.setattr(api, "study", fake_study)
        assert cli.main(["study", "--workers", "1",
                         "--format", "json"]) == 0
        capsys.readouterr()
        assert captured["config"].parallel_workers == 1


class TestStoreParity:
    def test_wal_stream_identical_to_sequential(self, tmp_path, targets):
        """Engine-level WAL byte-identity: admits and grabs land in the
        same order, under the same engine names, record for record."""
        from repro.store import RunStore
        from repro.store.writer import StoreWriter

        batch = targets[:120]
        streams = {}
        for mode in ("seq", "par"):
            world = make_world()
            store = RunStore.create(tmp_path / mode, config={"seed": 1},
                                    cooldown_ttl=259_200.0)
            writer = StoreWriter(store)
            with use_registry(MetricsRegistry()):
                if mode == "seq":
                    engine = ShardedScanEngine(
                        world.network, SOURCE, embedded_config(),
                        shards=4, name="parity")
                else:
                    engine = ParallelShardedScanEngine(
                        world.network, SOURCE, embedded_config(),
                        shards=4, workers=2, name="parity")
                engine.attach_store(writer, label="parity")
                engine.run(batch, label="parity")
            writer.close()
            streams[mode] = read_all(tmp_path / mode / "wal")[0]
        assert streams["par"] == streams["seq"]
        assert len(streams["seq"]) > len(batch)  # admits + grabs


class TestStudyParity:
    """Full-pipeline parity, small scale (the golden-scale sweep lives
    in test_golden_determinism)."""

    @staticmethod
    def _config(workers):
        from repro.core.campaign import CampaignConfig
        from repro.core.pipeline import ExperimentConfig

        return ExperimentConfig(
            world=WorldConfig(seed=11, scale=0.03),
            campaign=CampaignConfig(days=2, wire_fraction=0.0),
            include_rl=False, gap_days=1, lead_days=2, final_days=1,
            scan_shards=4, parallel_workers=workers)

    def test_study_reports_identical(self):
        runs = parity.assert_study_parity(self._config,
                                          worker_counts=(1, 2))
        parallel = runs[2]
        assert parallel.report.tables["parallel"]["hitlist"]["workers"] >= 1
        assert parallel.experiment.parallel is not None
        assert asdict(runs[0].experiment.config)["parallel_workers"] == 0
