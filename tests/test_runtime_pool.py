"""The persistent worker pool: snapshot cache, reuse parity, recovery.

:mod:`tests.test_runtime_parallel` owns the per-run parity and refusal
claims; this module exercises what is specific to pool *persistence* —
the pickle-once/ship-once snapshot cache and its invalidation, reuse of
spawned workers across engine runs and analysis calls (byte-identical
to fresh-pool runs), worker death inside a pool that must outlive the
broken batch, and the :class:`repro.api.ExecutionContext` lifecycle
including the implicit default contexts behind bare ``workers=`` calls.
"""

import os

import pytest

from repro import api
from repro.analysis.parallel import run_analysis
from repro.ipv6 import parse
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.runtime.parallel import (
    CRASH_ENV,
    ParallelShardedScanEngine,
    WorkerCrashed,
)
from repro.runtime.pool import (
    PoolBrokenError,
    WorkerPool,
    load_snapshot,
    resolve_workers,
)
from repro.scan.engine import EngineConfig
from repro.world.population import WorldConfig, build_world
from tests import parity

SOURCE = parse("2001:db8:5ca7::10")
WORLD = WorldConfig(seed=20240720, scale=0.02)


def make_world():
    return build_world(WORLD)


@pytest.fixture(scope="module")
def targets():
    world = make_world()
    hosts = sorted(world.network._hosts)
    return hosts + [address ^ 0xDEAD for address in hosts[:40]]


def embedded_config(**overrides):
    defaults = dict(drive_clock=False, seed=0x7E57)
    defaults.update(overrides)
    return EngineConfig(**defaults)


class _Anchor:
    """A weakref-able stand-in for the live objects real callers anchor
    snapshot tokens to (Network, ScanResults); plain dicts are not."""

    def __init__(self, **attrs):
        self.__dict__.update(attrs)


class TestResolveWorkers:
    def test_zero_means_sequential(self):
        assert resolve_workers(0) == 0

    def test_negative_rejected_with_field_name(self):
        with pytest.raises(ValueError, match="parallel_workers=-3"):
            resolve_workers(-3, field="parallel_workers")

    def test_capped_at_cpu_count(self):
        assert resolve_workers(10_000) == (os.cpu_count() or 1)

    def test_small_counts_pass_through(self):
        assert resolve_workers(1) == 1


class TestSnapshotShipping:
    def test_ship_spools_once_per_content(self):
        with WorkerPool(1) as pool:
            ref1 = pool.ship({"a": 1})
            ref2 = pool.ship({"a": 1})
            assert ref1 == ref2
            assert pool.stats["snapshots_shipped"] == 1
            assert pool.stats["snapshot_digest_hits"] == 1
            assert os.path.getsize(ref1.path) == ref1.size

    def test_token_lookup_skips_pickling(self):
        payload = _Anchor(big=list(range(64)))
        with WorkerPool(1) as pool:
            token = ("test", id(payload))
            assert pool.lookup(token, anchor=payload) is None
            ref = pool.ship(payload, token=token, anchor=payload)
            assert pool.lookup(token, anchor=payload) == ref
            assert pool.stats["snapshot_token_hits"] == 1

    def test_token_anchored_to_object_identity(self):
        """A recycled id() can never alias a dead object's snapshot."""
        first = _Anchor(x=1)
        with WorkerPool(1) as pool:
            token = ("test", 1234)
            pool.ship(first, token=token, anchor=first)
            impostor = _Anchor(x=2)
            assert pool.lookup(token, anchor=impostor) is None

    def test_load_snapshot_verifies_digest(self, tmp_path):
        with WorkerPool(1) as pool:
            ref = pool.ship(["payload"])
            with open(ref.path, "ab") as handle:
                handle.write(b"torn")
            with pytest.raises(RuntimeError, match="digest mismatch"):
                load_snapshot(ref)

    def test_close_removes_spool_and_refuses_work(self):
        pool = WorkerPool(1)
        ref = pool.ship({"a": 1})
        pool.close()
        assert not os.path.exists(ref.path)
        with pytest.raises(RuntimeError, match="closed"):
            pool.ship({"b": 2})
        pool.close()  # idempotent


class TestPoolReuseParity:
    def test_two_runs_one_pool_matches_fresh_pools(self, targets):
        """Engine runs sharing one persistent pool are byte-identical
        to fresh-pool runs, and the world ships exactly once."""
        batch = targets[:120]
        fresh = parity.run_parallel(make_world, batch, SOURCE,
                                    embedded_config(), shards=4, workers=2)
        with WorkerPool(2) as pool:
            world = make_world()
            registry = MetricsRegistry()
            with use_registry(registry):
                engine = ParallelShardedScanEngine(
                    world.network, SOURCE, embedded_config(),
                    shards=4, workers=2, name="parity", pool=pool)
                first = engine.run(batch, label="parity")
                second_engine = ParallelShardedScanEngine(
                    world.network, SOURCE, embedded_config(),
                    shards=4, workers=2, name="parity2", pool=pool)
                second = second_engine.run(batch, label="parity")
            # Embedded runs don't advance the clock or mutate topology,
            # so run two is a pure snapshot-cache hit.
            assert pool.stats["snapshots_shipped"] == 1
            assert pool.stats["snapshot_token_hits"] == 1
            assert engine.last_run_timing["snapshot"]["shipped"]
            assert second_engine.last_run_timing["snapshot"]["reused"]
            assert second_engine.last_run_timing["pool"]["persistent"]
            assert pool.stats["generations"] == 1
        parity.assert_results_equal(fresh["results"], first)
        parity.assert_results_equal(fresh["results"], second)

    def test_execution_context_reuse_byte_identical(self, targets):
        """Two engine runs plus one analysis job on a single
        ExecutionContext match fresh-pool outputs exactly."""
        batch = targets[:100]
        fresh = parity.run_parallel(make_world, batch, SOURCE,
                                    embedded_config(), shards=4, workers=2)
        with use_registry(MetricsRegistry()):
            inline_bundle = run_analysis(fresh["results"], fresh["results"])
        with api.ExecutionContext(workers=2) as ctx:
            runs = []
            for _ in range(2):
                runs.append(parity.run_parallel(
                    make_world, batch, SOURCE, embedded_config(),
                    shards=4, workers=2, pool=ctx.pool))
            with use_registry(MetricsRegistry()):
                pooled_bundle = run_analysis(runs[0]["results"],
                                             runs[0]["results"],
                                             pool=ctx.pool)
            stats = ctx.stats()
            assert stats["generations"] == 1
            # Two identically seeded worlds pickle to identical bytes:
            # the digest cache keeps the spool at one world snapshot
            # (plus the analysis results payload).
            assert stats["snapshots_shipped"] == 2
        for run in runs:
            parity.assert_results_equal(fresh["results"], run["results"])
            assert (parity.strip_parallel_metrics(run["metrics"])
                    == parity.strip_parallel_metrics(fresh["metrics"]))
        assert pooled_bundle.table3 == inline_bundle.table3
        assert pooled_bundle.secure == inline_bundle.secure

    def test_analysis_results_ship_once_per_pool(self):
        from tests.test_analysis_fastpath import _synthetic_results

        ntp = _synthetic_results("ntp")
        hitlist = _synthetic_results("hitlist", salt=3)
        with WorkerPool(2) as pool:
            with use_registry(MetricsRegistry()):
                first = run_analysis(ntp, hitlist, pool=pool)
                second = run_analysis(ntp, hitlist, pool=pool)
        assert pool.stats["snapshots_shipped"] == 2  # one per side
        assert pool.stats["snapshot_token_hits"] == 2
        assert first.table3 == second.table3


class TestSnapshotInvalidation:
    def test_topology_change_reships(self, targets):
        batch = targets[:60]
        world = make_world()
        with WorkerPool(2) as pool:
            with use_registry(MetricsRegistry()):
                engine = ParallelShardedScanEngine(
                    world.network, SOURCE, embedded_config(),
                    shards=2, workers=2, pool=pool)
                engine.run(batch, label="one")
                world.network.add_host(parse("2001:db8::f00d"))
                engine.run(batch, label="two")
            assert pool.stats["snapshots_shipped"] == 2
            assert pool.stats["snapshot_token_hits"] == 0

    def test_clock_advance_reships(self, targets):
        batch = targets[:60]
        world = make_world()
        with WorkerPool(2) as pool:
            with use_registry(MetricsRegistry()):
                engine = ParallelShardedScanEngine(
                    world.network, SOURCE, embedded_config(),
                    shards=2, workers=2, pool=pool)
                engine.run(batch, label="one")
                world.network.clock.advance(60.0)
                engine.run(batch, label="two")
            assert pool.stats["snapshots_shipped"] == 2

    def test_unchanged_world_is_a_token_hit(self, targets):
        batch = targets[:60]
        world = make_world()
        with WorkerPool(2) as pool:
            with use_registry(MetricsRegistry()):
                engine = ParallelShardedScanEngine(
                    world.network, SOURCE, embedded_config(),
                    shards=2, workers=2, pool=pool)
                engine.run(batch, label="one")
                engine.run(batch, label="two")
            assert pool.stats["snapshots_shipped"] == 1
            assert pool.stats["snapshot_token_hits"] == 1


class TestWorkerDeathInPersistentPool:
    def test_pool_recovers_after_worker_death(self, targets, monkeypatch):
        """A dead worker breaks one batch (typed error, nothing merged)
        and the same pool serves the next run on respawned workers."""
        world = make_world()
        batch = targets[:60]
        with WorkerPool(2) as pool:
            with use_registry(MetricsRegistry()):
                engine = ParallelShardedScanEngine(
                    world.network, SOURCE, embedded_config(),
                    shards=2, workers=2, pool=pool)
                monkeypatch.setenv(CRASH_ENV, "0:0")
                with pytest.raises(WorkerCrashed) as excinfo:
                    engine.run(batch, label="doomed")
                assert excinfo.value.shards
                assert engine.stats.targets_offered == 0
                monkeypatch.delenv(CRASH_ENV)
                results = engine.run(batch, label="recovered")
            assert results.targets_seen == len(batch)
            assert pool.stats["generations"] == 2

    def test_map_in_order_names_lost_indices(self, monkeypatch):
        monkeypatch.setenv(CRASH_ENV, "0:0")
        from repro.runtime.parallel import ShardTask, scan_shard
        world = make_world()
        with WorkerPool(1) as pool:
            from repro.runtime.snapshot import NetworkView
            ref = pool.ship(NetworkView.capture_full(world.network))
            task = ShardTask(
                shard=0, engine_name="t", label="t", source=SOURCE,
                config=embedded_config(), registry=None, ethics=None,
                view_ref=ref, targets=[(0, sorted(world.network._hosts)[0])],
                cooldown={})
            with pytest.raises(PoolBrokenError) as excinfo:
                list(pool.map_in_order(scan_shard, [task]))
            assert excinfo.value.lost == (0,)


class TestExecutionContext:
    def test_sequential_context_has_no_pool(self):
        with api.ExecutionContext(workers=0) as ctx:
            assert ctx.pool is None
            assert ctx.stats() == {}

    def test_closed_context_refuses_pool(self):
        ctx = api.ExecutionContext(workers=1)
        ctx.close()
        with pytest.raises(RuntimeError, match="closed"):
            ctx.pool
        ctx.close()  # idempotent

    def test_exit_joins_workers(self, targets):
        world = make_world()
        with api.ExecutionContext(workers=1) as ctx:
            with use_registry(MetricsRegistry()):
                engine = ParallelShardedScanEngine(
                    world.network, SOURCE, embedded_config(),
                    shards=2, workers=1, pool=ctx.pool)
                engine.run(targets[:40], label="ctx")
        import multiprocessing
        import time
        deadline = time.monotonic() + 2.0
        while multiprocessing.active_children() and \
                time.monotonic() < deadline:
            time.sleep(0.05)
        assert not multiprocessing.active_children()

    def test_default_contexts_are_reused_and_shut_down(self):
        api.shutdown_default_contexts()
        first = api._default_context(1)
        assert api._default_context(1) is first
        assert not first.closed
        api.shutdown_default_contexts()
        assert first.closed
        assert api._default_context(1) is not first

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers=-1"):
            api.ExecutionContext(workers=-1)
