"""Tests for the pluggable probe registry.

Covers the acceptance path: registering a custom probe and running a
narrowed (SSH+CoAP-only) campaign without touching engine internals.
"""

import random
from dataclasses import dataclass

import pytest

from repro.ipv6 import parse
from repro.net.simnet import SimpleSession
from repro.runtime.registry import ProbeRegistry, ProbeSpec, default_registry
from repro.scan.engine import EngineConfig, ScanEngine
from repro.scan.result import PROTOCOLS
from repro.world import devices as dev

SRC = parse("2001:db8:5c::1")
PREFIX = parse("2001:db8:600::")


class TestRegistry:
    def test_default_registry_matches_paper_order(self):
        assert default_registry().names == PROTOCOLS

    def test_register_and_unregister(self):
        registry = ProbeRegistry()
        spec = registry.register("telnet", lambda n, s, t: None, 23)
        assert "telnet" in registry
        assert registry.get("telnet") is spec
        registry.unregister("telnet")
        assert "telnet" not in registry

    def test_duplicate_name_rejected(self):
        registry = default_registry()
        with pytest.raises(ValueError, match="already registered"):
            registry.register("ssh", lambda n, s, t: None, 22)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            default_registry().get("gopher")
        with pytest.raises(KeyError):
            default_registry().unregister("gopher")

    def test_subset_preserves_given_order(self):
        registry = default_registry().subset("coap", "ssh")
        assert registry.names == ("coap", "ssh")

    def test_subset_is_independent(self):
        base = default_registry()
        narrowed = base.subset("ssh")
        narrowed.unregister("ssh")
        assert "ssh" in base

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ProbeSpec(name="", probe=lambda n, s, t: None, port=1)
        with pytest.raises(ValueError):
            ProbeSpec(name="x", probe=lambda n, s, t: None, port=1,
                      packet_cost=0)


@dataclass(frozen=True)
class TelnetGrab:
    """A custom grab: only the routing/aggregate attributes matter."""

    address: int
    time: float
    ok: bool
    banner: str = ""
    protocol: str = "telnet"
    port: int = 23


def scan_telnet(network, source, target):
    """A new protocol module, written without touching the engine."""
    now = network.clock.now()
    stream = network.tcp_connect(source, target, 23)
    if stream is None:
        return TelnetGrab(address=target, time=now, ok=False)
    banner = stream.read_greeting().decode("ascii", "replace")
    return TelnetGrab(address=target, time=now, ok=True, banner=banner)


@pytest.fixture()
def rng():
    return random.Random(11)


@pytest.fixture()
def fritz(network, rng):
    device = dev.make_fritzbox(rng, 0, 0x3C3786001234)
    device.assign_address(PREFIX, rng)
    device.materialize(network)
    return device


class TestCustomProbe:
    def test_custom_probe_runs_and_routes(self, network, fritz):
        telnet_host = parse("2001:db8:601::23")
        host = network.add_host(telnet_host)
        host.bind_tcp(23, type("TelnetService", (), {
            "accept": staticmethod(
                lambda peer, peer_port: SimpleSession(
                    respond=lambda data: None, banner=b"login: "))
        })())

        registry = default_registry()
        registry.register("telnet", scan_telnet, 23, packet_cost=2.0)
        engine = ScanEngine(network, SRC, EngineConfig(drive_clock=False),
                            registry=registry)
        results = engine.run([fritz.address, telnet_host])

        assert results.responsive_addresses("telnet") == {telnet_host}
        grab = results.responsive("telnet")[0]
        assert grab.banner == "login: "
        # The paper protocols ran too, and the aggregates see everything.
        assert results.responsive_addresses("http") == {fritz.address}
        assert "telnet" in results.protocols()
        assert results.hit_rate() == pytest.approx(1.0)

    def test_ssh_coap_only_campaign(self, network, rng):
        """Narrowed campaign via the registry — no engine internals."""
        from repro.tlslib.keys import derive_key

        ssh_host = dev.make_ssh_host(
            rng, 0, os_name="Debian", software="OpenSSH_9.2p1",
            comment="Debian-2+deb12u3",
            host_key=derive_key("test|ssh"), ntp=False)
        ssh_host.assign_address(PREFIX, rng)
        ssh_host.materialize(network)
        coap_device = dev.make_coap_device(
            rng, 0, resources=["/sensors/temp"], group="sensor", ntp=False)
        coap_device.assign_address(PREFIX + (1 << 64), rng)
        coap_device.materialize(network)

        engine = ScanEngine(network, SRC, EngineConfig(drive_clock=False),
                            registry=default_registry().subset("ssh", "coap"))
        results = engine.run([ssh_host.address, coap_device.address],
                             label="ssh+coap")

        assert engine.stats.probes_sent == 4  # 2 targets x 2 protocols
        assert results.responsive_addresses("ssh") == {ssh_host.address}
        assert results.responsive_addresses("coap") == {coap_device.address}
        assert results.http == [] and results.mqtt == []

    def test_experiment_with_protocol_profile(self):
        """The full pipeline accepts a probe profile end to end."""
        from repro.core.campaign import CampaignConfig
        from repro.core.pipeline import ExperimentConfig, run_experiment
        from repro.world.population import WorldConfig

        result = run_experiment(ExperimentConfig(
            world=WorldConfig(seed=20240720, scale=0.05),
            campaign=CampaignConfig(days=4, wire_fraction=0.0),
            include_rl=False, gap_days=0, lead_days=3, final_days=1,
            protocols=("ssh", "coap"),
        ))
        assert result.hitlist_scan.http == []
        assert result.ntp_scan.http == []
        assert len(result.hitlist_scan.responsive_addresses("ssh")) > 0
