"""Tests for the sharded scan engine."""

import random

import pytest

from repro.ipv6 import parse
from repro.runtime.sharding import ShardedScanEngine, shard_of
from repro.scan.engine import EngineConfig, ScanEngine
from repro.scan.result import ScanResults
from repro.world import devices as dev

SRC = parse("2001:db8:5c::1")
PREFIX = parse("2001:db8:600::")


def _make_targets(network, count):
    rng = random.Random(42)
    targets = []
    for index in range(count):
        device = dev.make_fritzbox(rng, index, 0x3C3786000000 + index)
        device.assign_address(PREFIX + (index << 64), rng)
        device.materialize(network)
        targets.append(device.address)
    # Interleave dead space so hit rates are non-trivial.
    targets.extend(parse("2001:db8:700::") + i for i in range(count))
    return sorted(targets)


class TestShardOf:
    def test_deterministic(self):
        address = parse("2001:db8::1")
        assert shard_of(address, 4) == shard_of(address, 4)

    def test_spreads_structured_addresses(self):
        """Addresses sharing a /64 must not pile onto one shard."""
        base = parse("2001:db8:1::")
        counts = [0] * 4
        for index in range(1000):
            counts[shard_of(base + index, 4)] += 1
        assert min(counts) > 150

    def test_full_range(self):
        seen = {shard_of(parse("2001:db8::") + i, 8) for i in range(10_000)}
        assert seen == set(range(8))


class TestShardedEngine:
    def test_shard_count_validation(self, network):
        with pytest.raises(ValueError):
            ShardedScanEngine(network, SRC, shards=0)

    def test_merged_totals_equal_single_engine(self, network):
        """The acceptance property: shards=4 totals == single engine."""
        targets = _make_targets(network, 12)
        single = ScanEngine(network, SRC, EngineConfig(drive_clock=False))
        sharded = ShardedScanEngine(network, SRC,
                                    EngineConfig(drive_clock=False), shards=4)
        single_results = single.run(targets, label="one")
        sharded_results = sharded.run(targets, label="four")

        assert sharded_results.targets_seen == single_results.targets_seen
        for protocol in single_results.protocols():
            assert (sharded_results.responsive_addresses(protocol)
                    == single_results.responsive_addresses(protocol))
            assert len(sharded_results.grabs(protocol)) == \
                len(single_results.grabs(protocol))
        assert sharded_results.hit_rate() == single_results.hit_rate()

    def test_stats_aggregate_across_shards(self, network):
        targets = _make_targets(network, 8)
        sharded = ShardedScanEngine(network, SRC,
                                    EngineConfig(drive_clock=False), shards=4)
        sharded.run(targets)
        stats = sharded.stats
        assert stats.targets_offered == len(targets)
        assert stats.targets_scanned == len(targets)
        assert stats.probes_sent == len(targets) * 8
        per_shard = [engine.stats.targets_scanned
                     for engine in sharded.engines]
        assert sum(per_shard) == len(targets)
        assert sum(1 for count in per_shard if count > 0) > 1

    def test_cooldown_isolated_per_shard_but_equivalent(self, network):
        """Re-feeding the same target hits its shard's cool-down."""
        targets = _make_targets(network, 4)
        sharded = ShardedScanEngine(network, SRC,
                                    EngineConfig(drive_clock=False), shards=4)
        results = ScanResults()
        assert sharded.feed(targets[0], results) is True
        assert sharded.feed(targets[0], results) is False
        assert sharded.stats.targets_cooled_down == 1
        assert sharded.tracked_targets == 1

    def test_merge_preserves_label_and_order(self, network):
        targets = _make_targets(network, 6)
        sharded = ShardedScanEngine(network, SRC,
                                    EngineConfig(drive_clock=False), shards=3)
        results = sharded.run(targets, label="hitlist")
        assert results.label == "hitlist"
        # Merged bucket order is shard order, then scan order — stable
        # across runs (the golden pipeline tests rely on this).
        again_network_targets = [grab.address for grab in results.http]
        assert again_network_targets == sorted(
            again_network_targets,
            key=lambda addr: (shard_of(addr, 3),
                              targets.index(addr)))
