"""Tests for the scan engine: protocol coverage, cool-down, pacing."""

import random

import pytest

from repro.ipv6 import parse
from repro.net.clock import DAY
from repro.scan.engine import EngineConfig, ScanEngine
from repro.scan.result import PROTOCOLS, ScanResults
from repro.world import devices as dev

SRC = parse("2001:db8:5c::1")
PREFIX = parse("2001:db8:600::")


@pytest.fixture()
def rng():
    return random.Random(11)


@pytest.fixture()
def fritz(network, rng):
    device = dev.make_fritzbox(rng, 0, 0x3C3786001234)
    device.assign_address(PREFIX, rng)
    device.materialize(network)
    return device


class TestScanAddress:
    def test_all_protocols_probed(self, network, fritz):
        engine = ScanEngine(network, SRC, EngineConfig(drive_clock=False))
        grabs = engine.scan_address(fritz.address)
        assert len(grabs) == len(PROTOCOLS)
        assert {grab.protocol for grab in grabs} == set(PROTOCOLS)

    def test_fritz_answers_web_only(self, network, fritz):
        engine = ScanEngine(network, SRC, EngineConfig(drive_clock=False))
        outcomes = {grab.protocol: grab.ok
                    for grab in engine.scan_address(fritz.address)}
        assert outcomes["http"] and outcomes["https"]
        assert not outcomes["ssh"]
        assert not outcomes["coap"]

    def test_driving_mode_advances_clock(self, network, fritz):
        engine = ScanEngine(network, SRC, EngineConfig(
            drive_clock=True, protocol_delay_min=10, protocol_delay_max=10))
        start = network.clock.now()
        engine.scan_address(fritz.address)
        # 7 inter-protocol delays of 10s each.
        assert network.clock.now() - start == pytest.approx(70.0)

    def test_embedded_mode_freezes_clock(self, network, fritz):
        engine = ScanEngine(network, SRC, EngineConfig(drive_clock=False))
        start = network.clock.now()
        engine.scan_address(fritz.address)
        assert network.clock.now() == start


class TestCooldown:
    def test_cooldown_suppresses_rescan(self, network, fritz):
        engine = ScanEngine(network, SRC, EngineConfig(drive_clock=False))
        results = ScanResults()
        assert engine.feed(fritz.address, results) is True
        assert engine.feed(fritz.address, results) is False
        assert engine.stats.targets_cooled_down == 1
        assert len(results.http) == 1

    def test_cooldown_expires(self, network, fritz):
        engine = ScanEngine(network, SRC, EngineConfig(drive_clock=False))
        results = ScanResults()
        engine.feed(fritz.address, results)
        network.clock.advance(3 * DAY + 1)
        assert engine.feed(fritz.address, results) is True

    def test_distinct_addresses_not_cooled(self, network, rng):
        engine = ScanEngine(network, SRC, EngineConfig(drive_clock=False))
        results = ScanResults()
        for index in range(3):
            device = dev.make_fritzbox(rng, index, 0x3C3786000100 + index)
            device.assign_address(PREFIX + (index << 64), rng)
            device.materialize(network)
            assert engine.feed(device.address, results) is True
        assert engine.stats.targets_scanned == 3


class TestCooldownPruning:
    def test_expired_entries_evicted(self, network, rng):
        """The last-scanned map stays bounded over a long campaign."""
        config = EngineConfig(drive_clock=False, prune_every=10)
        engine = ScanEngine(network, SRC, config)
        results = ScanResults()
        prefix = parse("2001:db8:610::")
        # Feed batches of fresh (dead) addresses, advancing past the
        # cool-down between batches so earlier entries expire.
        for batch in range(8):
            for index in range(10):
                engine.feed(prefix + (batch << 32) + index, results)
            network.clock.advance(engine.config.cooldown + 1)
        # Without pruning the map would hold all 80 entries.
        assert engine.scheduler.tracked_targets <= 20
        assert engine.stats.cooldown_pruned >= 60
        assert engine.stats.targets_scanned == 80

    def test_pruning_never_weakens_cooldown(self, network, fritz):
        """An address inside its cool-down window survives sweeps."""
        config = EngineConfig(drive_clock=False, prune_every=5)
        engine = ScanEngine(network, SRC, config)
        results = ScanResults()
        engine.feed(fritz.address, results)
        # Burn several sweep cycles without advancing time.
        for index in range(25):
            engine.feed(parse("2001:db8:611::") + index, results)
        assert engine.feed(fritz.address, results) is False
        assert engine.stats.targets_cooled_down == 1

    def test_manual_prune_reports_evictions(self, network, fritz):
        engine = ScanEngine(network, SRC, EngineConfig(drive_clock=False))
        engine.feed(fritz.address, ScanResults())
        assert engine.scheduler.prune() == 0
        network.clock.advance(engine.config.cooldown + 1)
        assert engine.scheduler.prune() == 1
        assert engine.scheduler.tracked_targets == 0


class TestRun:
    def test_run_over_target_list(self, network, fritz):
        engine = ScanEngine(network, SRC, EngineConfig(
            drive_clock=True, protocol_delay_min=0, protocol_delay_max=0))
        dead = parse("2001:db8:601::1")
        results = engine.run([fritz.address, dead], label="hitlist")
        assert results.label == "hitlist"
        assert results.targets_seen == 2
        assert results.responsive_addresses("http") == {fritz.address}

    def test_hit_rate(self, network, fritz):
        engine = ScanEngine(network, SRC, EngineConfig(
            drive_clock=True, protocol_delay_min=0, protocol_delay_max=0))
        dead = [parse("2001:db8:602::1") + i for i in range(9)]
        results = engine.run([fritz.address] + dead)
        assert results.hit_rate() == pytest.approx(0.1)

    def test_rate_limit_costs_time(self, network, fritz):
        config = EngineConfig(drive_clock=True, packets_per_second=8.0,
                              protocol_delay_min=0, protocol_delay_max=0)
        engine = ScanEngine(network, SRC, config)
        engine.run([fritz.address] * 1 + [parse("2001:db8:603::1")])
        # 2 targets x 8 probes x 4 packets = 64 packets at 8 pps, minus
        # the initial burst of 8 -> at least ~7 simulated seconds.
        assert network.clock.now() >= 6.0
        assert engine.stats.seconds_waited > 0
