"""Tests for the ethics machinery: opt-out list, scanner identity."""

import random

import pytest

from repro.ipv6 import parse
from repro.net.rdns import ReverseDns
from repro.scan.engine import EngineConfig, ScanEngine
from repro.scan.ethics import (
    INFO_TITLE,
    EthicsPolicy,
    OptOutList,
    publish_scanner_identity,
)
from repro.scan.modules.http import scan_http
from repro.scan.result import ScanResults
from repro.world import devices as dev

SRC = parse("2001:db8:5c::1")
PREFIX = parse("2001:db8:900::")


class TestOptOutList:
    def test_single_address(self):
        opt_out = OptOutList()
        opt_out.add(parse("2001:db8::1"))
        assert opt_out.blocked(parse("2001:db8::1"))
        assert not opt_out.blocked(parse("2001:db8::2"))

    def test_prefix_blocks_everything_inside(self):
        opt_out = OptOutList()
        opt_out.add(parse("2001:db8:900::"), 48)
        assert opt_out.blocked(parse("2001:db8:900:42::dead"))
        assert not opt_out.blocked(parse("2001:db8:901::1"))

    def test_cidr_text(self):
        opt_out = OptOutList()
        opt_out.add_network("2001:db8:900::/48")
        opt_out.add_network("2001:db8:aaaa::5")
        assert opt_out.blocked(parse("2001:db8:900::1"))
        assert opt_out.blocked(parse("2001:db8:aaaa::5"))
        assert len(opt_out) == 2

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            OptOutList().add(0, 129)


class TestPolicyInEngine:
    def test_opted_out_target_never_probed(self, network):
        rng = random.Random(1)
        device = dev.make_fritzbox(rng, 0, 0x3C3786400001)
        device.assign_address(PREFIX, rng)
        device.materialize(network)

        policy = EthicsPolicy()
        policy.opt_out.add(device.address)
        packets = []
        network.add_tap(lambda record: packets.append(record)
                        if record.dst == device.address else None)
        engine = ScanEngine(network, SRC, EngineConfig(drive_clock=False),
                            ethics=policy)
        results = ScanResults()
        assert engine.feed(device.address, results) is False
        assert policy.suppressed == 1
        assert packets == []
        assert results.responsive_addresses("http") == set()

    def test_opt_out_mid_campaign(self, network):
        rng = random.Random(1)
        device = dev.make_fritzbox(rng, 0, 0x3C3786400002)
        device.assign_address(PREFIX, rng)
        device.materialize(network)
        policy = EthicsPolicy()
        engine = ScanEngine(network, SRC, EngineConfig(drive_clock=False),
                            ethics=policy)
        results = ScanResults()
        assert engine.feed(device.address, results) is True
        policy.opt_out.add_network("2001:db8:900::/48")
        network.clock.advance(4 * 86_400)
        assert engine.feed(device.address, results) is False

    def test_engine_without_policy_unchanged(self, network):
        engine = ScanEngine(network, SRC, EngineConfig(drive_clock=False))
        results = ScanResults()
        engine.feed(parse("2001:db8:901::1"), results)
        assert engine.stats.targets_scanned == 1


class TestScannerIdentity:
    def test_info_page_served(self, network):
        publish_scanner_identity(network, SRC)
        grab = scan_http(network, parse("2001:db8::77"), SRC)
        assert grab.ok
        assert grab.title == INFO_TITLE

    def test_rdns_published(self, network):
        rdns = ReverseDns()
        publish_scanner_identity(network, SRC, rdns)
        assert rdns.identifies_research(SRC)

    def test_idempotent(self, network):
        publish_scanner_identity(network, SRC)
        publish_scanner_identity(network, SRC)  # must not double-bind

    def test_pipeline_scanner_is_identifiable(self, experiment):
        """Anyone probing the study's scanner finds the explanation."""
        rdns = experiment.world.rdns
        candidates = [
            address for address in getattr(rdns, "_records", {})
            if rdns.identifies_research(address)
        ]
        assert candidates
        grab = scan_http(experiment.world.network,
                         parse("2001:db8::7777"), candidates[0])
        assert grab.ok and grab.title == INFO_TITLE
