"""The NTP control-plane scan module and the amplification study.

Covers the whole monlist data path: the picklable
:class:`NtpControlService` world hosts, :func:`scan_ntp`'s
readvar+monlist probe, the exposure/amplification analyses, and
``api.amplification``'s worker-count parity (the rendered table must
be byte-identical at 0/2/4 workers).
"""

from __future__ import annotations

import pickle

import pytest

from repro import api
from repro.analysis.amplification import (
    amplification_distribution,
    amplification_table,
    monlist_exposure,
    version_group,
)
from repro.net.packet import Datagram
from repro.net.simnet import Network
from repro.ntp.control import (
    MONLIST_PACKET_SIZE,
    MONLIST_REQUEST_SIZE,
    monlist_request,
    readvar_request,
)
from repro.ntp.service import (
    NtpControlService,
    control_service_for,
    seeded_entries,
)
from repro.scan.modules.ntp import scan_ntp
from repro.scan.result import NtpGrab, ScanResults
from repro.world.ntpprofiles import profile_for
from tests.parity import WORKER_COUNTS

PREFIX48 = 0x2001_0DB8_00AA << 80
SCANNER = PREFIX48 + (0xFFFF << 64) + 0x5CA7


def deploy_pool(network, seed=7, servers=40, max_entries=24):
    addresses = [PREFIX48 + ((0xA000 + index) << 64) + 1
                 for index in range(servers)]
    network.add_host(SCANNER)
    for address in addresses:
        network.add_host(address).bind_udp(
            123, control_service_for(seed, address,
                                     max_entries=max_entries))
    return addresses


class TestSeededWorld:
    def test_profiles_vary_across_subnets(self):
        # The regression this pins: addresses differing only above bit
        # 64 (the study's server plan) must not share an RNG stream.
        profiles = {profile_for(7, PREFIX48 + ((0xA000 + i) << 64) + 1)
                    for i in range(40)}
        assert len(profiles) > 3

    def test_profile_and_entries_deterministic(self):
        address = PREFIX48 + (0xA003 << 64) + 1
        assert profile_for(7, address) == profile_for(7, address)
        assert seeded_entries(7, address) == seeded_entries(7, address)
        assert profile_for(7, address) != profile_for(8, address) or \
            seeded_entries(7, address) != seeded_entries(8, address)

    def test_service_pickle_roundtrip(self):
        address = PREFIX48 + (0xA001 << 64) + 1
        service = control_service_for(7, address)
        clone = pickle.loads(pickle.dumps(service))
        request = Datagram(src=SCANNER, src_port=50000, dst=address,
                           dst_port=123, payload=monlist_request().encode())
        assert clone(request) == service(request)
        readvar = Datagram(src=SCANNER, src_port=50000, dst=address,
                           dst_port=123,
                           payload=readvar_request().encode())
        assert clone(readvar) == service(readvar)

    def test_entries_bounded_by_max(self):
        for index in range(20):
            address = PREFIX48 + ((0xA000 + index) << 64) + 1
            assert len(seeded_entries(7, address, max_entries=5)) <= 5
        with pytest.raises(ValueError):
            seeded_entries(7, 1, max_entries=-1)


class TestScanNtp:
    def test_exposed_server_yields_amplification(self):
        network = Network()
        addresses = deploy_pool(network, seed=7)
        exposed = [
            address for address in addresses
            if profile_for(7, address).monlist_enabled
            and seeded_entries(7, address, max_entries=24)
        ]
        assert exposed  # the seed must produce some open servers
        grab = scan_ntp(network, SCANNER, exposed[0])
        assert grab.ok and grab.monlist
        assert grab.version == profile_for(7, exposed[0]).software_version
        assert grab.entries == len(
            seeded_entries(7, exposed[0], max_entries=24))
        assert grab.request_bytes == MONLIST_REQUEST_SIZE
        assert grab.response_bytes \
            >= (grab.response_packets - 1) * MONLIST_PACKET_SIZE
        assert grab.amplification > 1.0

    def test_patched_server_answers_readvar_not_monlist(self):
        network = Network()
        addresses = deploy_pool(network, seed=7)
        patched = [address for address in addresses
                   if not profile_for(7, address).monlist_enabled]
        assert patched
        grab = scan_ntp(network, SCANNER, patched[0])
        assert grab.ok and not grab.monlist
        assert grab.entries == 0 and grab.response_bytes == 0
        assert grab.amplification == 0.0
        assert grab.version.startswith("ntpd 4.2.8")

    def test_silent_target_not_responsive(self):
        network = Network()
        network.add_host(SCANNER)
        network.add_host(PREFIX48 + 99)  # host up, port 123 unbound
        grab = scan_ntp(network, SCANNER, PREFIX48 + 99)
        assert not grab.ok and grab.version is None

    def test_results_route_ntp_grabs(self):
        results = ScanResults()
        results.add(NtpGrab(address=1, time=0.0, ok=True))
        assert len(results.grabs("ntp")) == 1


class TestAnalyses:
    def test_version_group_mapping(self):
        assert version_group("xntpd 3.5.9") == "ntpv3"
        assert version_group("ntpd 4.2.6p5") == "ntpd<4.2.7p26"
        assert version_group("ntpd 4.2.8p17") == "ntpd-patched"
        assert version_group("") == "unknown"
        assert version_group("chrony 4.3") == "unknown"

    def grabs(self):
        results = ScanResults()
        results.add(NtpGrab(address=1, time=0.0, ok=True,
                            version="xntpd 3.5.1", monlist=True,
                            entries=12, response_packets=2,
                            request_bytes=72, response_bytes=880))
        results.add(NtpGrab(address=2, time=0.0, ok=True,
                            version="ntpd 4.2.8p10", monlist=False,
                            request_bytes=72))
        results.add(NtpGrab(address=3, time=0.0, ok=False))
        return results

    def test_exposure_counts_responsive_only(self):
        exposure = monlist_exposure("t", self.grabs())
        assert exposure.responsive == 2
        assert exposure.exposed == 1
        assert exposure.exposed_share == 0.5
        assert {row.group for row in exposure.rows} \
            == {"ntpv3", "ntpd-patched"}

    def test_distribution_buckets_exposed_factors(self):
        distribution = amplification_distribution("t", self.grabs())
        assert distribution.samples == 1
        assert distribution.mean == pytest.approx(880 / 72)
        assert sum(bucket.count for bucket in distribution.buckets) == 1

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            amplification_distribution("t", self.grabs(), edges=(5.0, 1.0))

    def test_table_renders_both_reports(self):
        table = amplification_table(
            monlist_exposure("t", self.grabs()),
            amplification_distribution("t", self.grabs()))
        assert "monlist exposure (t)" in table
        assert "amplification factors (t)" in table
        assert "exposed servers: 1" in table


class TestAmplificationApi:
    def test_study_shape(self):
        result = api.amplification(api.AmplificationConfig(servers=32))
        assert result.exposure.responsive == 32
        assert 0 < result.exposure.exposed < 32
        assert result.distribution.samples <= result.exposure.exposed
        assert result.report.command == "amplification"
        assert result.report.tables["rendered"] == result.table
        assert result.report.tables["exposure_total"]["responsive"] == 32

    def test_worker_parity_table_byte_identical(self):
        """The tentpole's determinism pin: identical artefact at every
        worker count."""
        config = api.AmplificationConfig(servers=48)
        reference = api.amplification(config)
        for workers in WORKER_COUNTS:
            with api.ExecutionContext(workers=workers) as ctx:
                candidate = api.amplification(config, ctx=ctx)
            assert candidate.table == reference.table, f"workers={workers}"
            assert candidate.results.grabs("ntp") \
                == reference.results.grabs("ntp"), f"workers={workers}"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            api.AmplificationConfig(servers=0)
        with pytest.raises(ValueError):
            api.AmplificationConfig(max_entries=-1)
        with pytest.raises(ValueError):
            api.AmplificationConfig(shards=0)
