"""Unit tests for the virtual-clock token bucket."""

import pytest

from repro.net.clock import VirtualClock
from repro.scan.ratelimit import TokenBucket


class TestTokenBucket:
    def test_burst_available_immediately(self):
        bucket = TokenBucket(VirtualClock(), rate=10, burst=5)
        assert bucket.try_acquire(5)
        assert not bucket.try_acquire(1)

    def test_refill_over_time(self):
        clock = VirtualClock()
        bucket = TokenBucket(clock, rate=10, burst=10)
        bucket.try_acquire(10)
        clock.advance(0.5)
        assert bucket.available == pytest.approx(5.0)
        assert bucket.try_acquire(5)

    def test_refill_caps_at_burst(self):
        clock = VirtualClock()
        bucket = TokenBucket(clock, rate=10, burst=10)
        clock.advance(100)
        assert bucket.available == pytest.approx(10.0)

    def test_acquire_advances_clock_when_starved(self):
        clock = VirtualClock()
        bucket = TokenBucket(clock, rate=10, burst=10)
        bucket.acquire(10)
        waited = bucket.acquire(5)
        assert waited == pytest.approx(0.5)
        assert clock.now() == pytest.approx(0.5)

    def test_acquire_no_wait_when_available(self):
        clock = VirtualClock()
        bucket = TokenBucket(clock, rate=10, burst=10)
        assert bucket.acquire(3) == 0.0
        assert clock.now() == 0.0

    def test_acquire_rejects_more_than_burst(self):
        bucket = TokenBucket(VirtualClock(), rate=10, burst=5)
        with pytest.raises(ValueError):
            bucket.acquire(6)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(VirtualClock(), rate=0)

    def test_burst_exhaustion_then_partial_refill(self):
        """After draining the burst, availability tracks elapsed time."""
        clock = VirtualClock()
        bucket = TokenBucket(clock, rate=50, burst=20)
        assert bucket.try_acquire(20)
        assert bucket.available == pytest.approx(0.0)
        assert not bucket.try_acquire(0.5)
        clock.advance(0.1)  # 5 tokens back
        assert bucket.available == pytest.approx(5.0)
        assert bucket.try_acquire(5)
        assert not bucket.try_acquire(1)

    def test_fractional_packet_costs(self):
        """Sub-packet costs (per-probe budgets) accumulate exactly."""
        clock = VirtualClock()
        bucket = TokenBucket(clock, rate=10, burst=2)
        for _ in range(8):
            assert bucket.try_acquire(0.25)
        assert bucket.available == pytest.approx(0.0)
        waited = bucket.acquire(0.5)
        assert waited == pytest.approx(0.05)
        assert clock.now() == pytest.approx(0.05)

    def test_refill_over_simulated_time_steps(self):
        """Refill integrates over many small clock steps, not call counts."""
        clock = VirtualClock()
        bucket = TokenBucket(clock, rate=100, burst=100)
        bucket.try_acquire(100)
        for _ in range(10):
            clock.advance(0.01)
            bucket.available  # interleaved reads must not double-count
        assert bucket.available == pytest.approx(10.0)
        clock.advance(10)
        assert bucket.available == pytest.approx(100.0)

    def test_sustained_rate(self):
        """Over a long run, throughput converges on the configured rate."""
        clock = VirtualClock()
        bucket = TokenBucket(clock, rate=100, burst=100)
        for _ in range(1000):
            bucket.acquire(10)
        # 10 000 tokens at 100/s minus the initial 100-token burst.
        assert clock.now() == pytest.approx(99.0, rel=0.02)
