"""Unit tests for scan result accumulation and aggregates."""

import pytest

from repro.scan.result import (
    BrokerGrab,
    CoapGrab,
    HttpGrab,
    ScanResults,
    SshGrab,
    TlsObservation,
)


def _http(address, ok=True, port=80, status=200, title=None, tls=None):
    return HttpGrab(address=address, time=0.0, port=port, ok=ok,
                    status=status, title=title, tls=tls)


def _tls(fingerprint=b"fp1", ok=True):
    return TlsObservation(ok=ok, fingerprint=fingerprint if ok else None)


class TestRouting:
    def test_http_grab_port_routing(self):
        results = ScanResults()
        results.add(_http(1, port=80))
        results.add(_http(2, port=443))
        assert len(results.http) == 1
        assert len(results.https) == 1

    def test_broker_protocol_routing(self):
        results = ScanResults()
        results.add(BrokerGrab(address=1, time=0, port=1883,
                               protocol="mqtt", ok=True))
        results.add(BrokerGrab(address=1, time=0, port=8883,
                               protocol="mqtts", ok=True))
        assert len(results.mqtt) == 1
        assert len(results.mqtts) == 1

    def test_unknown_protocol_rejected(self):
        with pytest.raises(KeyError):
            ScanResults().grabs("gopher")

    def test_non_grab_rejected(self):
        with pytest.raises(TypeError):
            ScanResults().add("not a grab")


class TestAggregates:
    def test_responsive_addresses_dedup(self):
        results = ScanResults()
        results.add(_http(1))
        results.add(_http(1))
        results.add(_http(2, ok=False))
        assert results.responsive_addresses("http") == {1}

    def test_tls_addresses_require_handshake_success(self):
        results = ScanResults()
        results.add(_http(1, port=443, tls=_tls(ok=True)))
        results.add(_http(2, port=443, tls=_tls(ok=False)))
        results.add(_http(3, port=443, tls=None))
        assert results.tls_addresses("https") == {1}

    def test_unique_fingerprints_https(self):
        results = ScanResults()
        results.add(_http(1, port=443, tls=_tls(b"a")))
        results.add(_http(2, port=443, tls=_tls(b"a")))
        results.add(_http(3, port=443, tls=_tls(b"b")))
        assert len(results.unique_fingerprints("https")) == 2

    def test_unique_fingerprints_ssh(self):
        results = ScanResults()
        results.add(SshGrab(address=1, time=0, ok=True,
                            key_fingerprint=b"k1"))
        results.add(SshGrab(address=2, time=0, ok=True,
                            key_fingerprint=b"k1"))
        assert len(results.unique_fingerprints("ssh")) == 1

    def test_merged_http(self):
        results = ScanResults()
        results.add(_http(1, port=80))
        results.add(_http(2, port=443, tls=_tls()))
        assert len(results.merged_http()) == 2

    def test_hit_rate_counts_any_protocol(self):
        results = ScanResults()
        results.targets_seen = 10
        results.add(_http(1))
        results.add(CoapGrab(address=2, time=0, ok=True))
        results.add(SshGrab(address=1, time=0, ok=True))  # same address
        assert results.hit_rate() == pytest.approx(0.2)

    def test_hit_rate_empty(self):
        assert ScanResults().hit_rate() == 0.0
