"""ServiceConfig / AnalyzeConfig validation and round-trip contracts.

The service config persists in ``meta.json`` exactly like the batch
``ExperimentConfig``, so the asdict → JSON → ``service_config_from_
document`` loop must be the identity — a resumed daemon rebuilds its
configuration from nothing but the run directory.
"""

import json
from dataclasses import asdict

import pytest

from repro import api
from repro.core.campaign import CampaignConfig
from repro.service import (
    ServiceConfig,
    is_service_document,
    service_config_from_document,
)


def make_config(**overrides):
    defaults = dict(store_dir="/tmp/example-run")
    defaults.update(overrides)
    return ServiceConfig(**defaults)


# -- validation (house style: errors lead with field=value) -----------------

def test_store_dir_is_required():
    with pytest.raises(ValueError, match="store_dir=None"):
        ServiceConfig()


@pytest.mark.parametrize("field,value", [
    ("campaign_days", 0),
    ("checkpoint_days", 0),
    ("hitlist_days", -1),
    ("scan_shards", 0),
    ("drift_spawn_rate", 1.5),
    ("drift_retire_rate", -0.1),
    ("pool_join_rate", 2.0),
    ("pool_leave_rate", -1.0),
    ("window", 0),
    ("step", 0),
    ("serve_cache_frames", 0),
    ("segment_max_records", 0),
    ("fsync_every", 0),
])
def test_rejects_out_of_range_knobs(field, value):
    with pytest.raises(ValueError, match=f"{field}={value}"):
        make_config(**{field: value})


def test_rejects_unknown_protocols():
    with pytest.raises(ValueError, match="protocols=ssh,nope"):
        make_config(protocols=("ssh", "nope"))


def test_rejects_empty_protocol_tuple():
    with pytest.raises(ValueError, match="protocols="):
        make_config(protocols=())


def test_hitlist_days_zero_disables_sweeps():
    assert make_config(hitlist_days=0).hitlist_days == 0


# -- document round trip ----------------------------------------------------

def test_round_trips_through_json_document():
    config = make_config(
        campaign=CampaignConfig(label="svc", wire_fraction=0.0),
        campaign_days=14, checkpoint_days=2, hitlist_days=3,
        protocols=("ssh", "http"), drift_spawn_rate=0.05,
        window=3, step=1, serve_cache_frames=8)
    document = json.loads(json.dumps(asdict(config)))
    rebuilt = service_config_from_document(document)
    assert rebuilt == config
    # Moved run directories resume in place via the override.
    moved = service_config_from_document(document, store_dir="/elsewhere")
    assert moved.store_dir == "/elsewhere"


def test_document_kind_discrimination():
    from repro.core.pipeline import ExperimentConfig

    service_doc = json.loads(json.dumps(asdict(make_config())))
    batch_doc = json.loads(json.dumps(asdict(ExperimentConfig())))
    assert is_service_document(service_doc)
    assert not is_service_document(batch_doc)


# -- AnalyzeConfig windowed knobs -------------------------------------------

def test_analyze_window_requires_run_dir():
    with pytest.raises(ValueError, match="window=7"):
        api.AnalyzeConfig(ntp_path="a.jsonl", hitlist_path="b.jsonl",
                          window=7)


@pytest.mark.parametrize("kwargs,lead", [
    (dict(since=1.0), "since=1.0"),
    (dict(step=2.0), "step=2.0"),
])
def test_analyze_since_step_require_window(kwargs, lead):
    with pytest.raises(ValueError, match=lead):
        api.AnalyzeConfig(run_dir="/tmp/run", **kwargs)


@pytest.mark.parametrize("kwargs,lead", [
    (dict(window=0), "window=0"),
    (dict(window=7, since=-1), "since=-1"),
    (dict(window=7, step=0), "step=0"),
])
def test_analyze_rejects_bad_spans(kwargs, lead):
    with pytest.raises(ValueError, match=lead):
        api.AnalyzeConfig(run_dir="/tmp/run", **kwargs)


def test_analyze_windowed_config_round_trips():
    config = api.AnalyzeConfig(run_dir="/tmp/run", since=2.0, window=7.0,
                               step=3.5)
    document = json.loads(json.dumps(asdict(config)))
    assert api.AnalyzeConfig(**document) == config
