"""Campaign-daemon tests: drift, resume-after-crash, store hygiene.

The crash/resume golden reuses the store suite's fault-injection
harness: kill the daemon mid-campaign with a :class:`BaseException`
(so no ``except Exception`` swallows it), resume from nothing but the
run directory, and demand the *windowed series* — the subsystem's
user-facing output — comes out byte-identical to the uninterrupted
campaign's.
"""

import json
from dataclasses import asdict

import pytest

from repro import api
from repro.io.jsonl import to_canonical_json
from repro.net.clock import DAY
from repro.service import CampaignDaemon, WindowedStudyReader
from repro.store import RunStore, fault_injection

from tests.conftest import service_config


class SimulatedCrash(BaseException):
    pass


def series_bytes(run_dir, *, window_days=4, step_days=2):
    reader = WindowedStudyReader(RunStore.open(run_dir))
    frames = reader.series(since=0.0, window=window_days * DAY,
                           step=step_days * DAY)
    return [to_canonical_json(frame.document) for frame in frames]


def test_campaign_store_verifies_clean(service_run):
    result, run_dir = service_run
    verify = RunStore.open(run_dir).verify()
    assert verify["ok"], verify["problems"]
    assert verify["cooldown_violations"] == 0
    assert set(verify["records_by_kind"]) == {"sighting", "admit",
                                              "grab", "mark"}
    days = result.daemon.config.campaign_days
    # One checkpoint per checkpoint_days plus the final close() cut.
    assert (RunStore.open(run_dir).inspect()["checkpoints"]
            >= days // 3)


def test_world_evolves_under_the_campaign(service_run):
    result, _ = service_run
    drift = result.report.tables["drift"]
    assert drift["devices_spawned"] > 0
    assert drift["devices_retired"] > 0
    assert drift["hitlist_sweeps"] == (
        result.daemon.config.campaign_days // 4)
    targets = result.report.tables["campaign"]["targets"]
    assert targets["hitlist"] > 0 and targets["ntp"] > 0


def test_tick_past_horizon_raises(service_run):
    result, _ = service_run
    with pytest.raises(RuntimeError, match="campaign complete"):
        result.daemon.tick()


def test_crashed_campaign_resumes_to_identical_series(tmp_path,
                                                      service_run):
    golden_result, golden_dir = service_run
    run_dir = tmp_path / "crashed"
    state = {"count": 0}

    def hook(point, seq, acked):
        if point == "post-append":
            state["count"] += 1
            if state["count"] >= 30_000:  # mid-campaign, past a checkpoint
                raise SimulatedCrash()

    with fault_injection(hook):
        with pytest.raises(SimulatedCrash):
            api.run_campaign(service_config(run_dir))

    resumed = api.resume_campaign(str(run_dir))

    # Same campaign tables (the store path is the only allowed delta).
    golden_tables = json.loads(json.dumps(golden_result.report.tables))
    resumed_tables = json.loads(json.dumps(resumed.report.tables))
    assert (golden_tables["store"].pop("run_dir")
            != resumed_tables["store"].pop("run_dir"))
    assert resumed_tables == golden_tables

    # Same WAL, bit for bit at the record level.
    verify = RunStore.open(run_dir).verify()
    assert verify["ok"], verify["problems"]
    assert verify["cooldown_violations"] == 0
    assert verify["last_seq"] == RunStore.open(golden_dir).verify()[
        "last_seq"]

    # And the windowed series — the service's actual product — is
    # byte-identical to the uninterrupted campaign's.
    assert series_bytes(run_dir) == series_bytes(golden_dir)


def test_resume_guards_point_at_the_right_entry(tmp_path, service_run):
    _, service_dir = service_run
    with pytest.raises(ValueError, match="resume_campaign"):
        api.resume(str(service_dir))

    from repro.core.pipeline import ExperimentConfig

    batch_dir = tmp_path / "batch"
    store = RunStore.create(
        batch_dir, config=json.loads(json.dumps(asdict(ExperimentConfig()))),
        cooldown_ttl=0.0)
    store.new_writer().close()
    with pytest.raises(ValueError, match="api.resume"):
        CampaignDaemon.resume(str(batch_dir))
