"""Golden proofs for the windowed query engine.

The load-bearing equality: a window materialized from *bounded*
checkpoint-anchored replay must be byte-identical to the same window
folded from a *full* from-genesis replay.  The independent fold below
re-implements only the record selection rules (never the table
construction — both sides share :func:`window_document`), so the two
paths agree exactly when anchor choice, mark bracketing, and the
early-stop rule are all correct — across checkpoint boundaries,
segment boundaries, and grab-timestamp jitter.
"""

import shutil

import pytest

from repro.io.jsonl import grab_from_json, to_canonical_json
from repro.net.clock import DAY
from repro.scan.result import ScanResults
from repro.service import WindowedStudyReader, window_document
from repro.store import CompactedBehindReader, RunStore, read_study
from repro.store.wal import WalReader


@pytest.fixture(scope="module")
def service_store(service_run):
    _, run_dir = service_run
    return RunStore.open(run_dir)


@pytest.fixture(scope="module")
def reader(service_store):
    return WindowedStudyReader(service_store)


def full_replay_document(store, t0, t1, *, ntp_label="ntp"):
    """The same window, selected by an unbounded from-genesis fold."""
    results = {}
    baseline = {}
    end_targets = {}
    sightings = 0
    addresses = set()
    for record in WalReader(store.wal_dir).records():
        kind = record.get("t")
        if kind == "grab":
            grab = grab_from_json(record)
            if t0 <= grab.time < t1:
                label = record["label"]
                bucket = results.setdefault(label,
                                            ScanResults(label=label))
                bucket.bucket(grab.protocol).append(grab)
        elif kind == "sighting":
            if t0 <= record["time"] < t1:
                sightings += 1
                addresses.add(record["addr"])
        elif kind == "mark":
            if record["clock"] <= t0 + 1e-9:
                baseline.update(record["targets"])
            if record["clock"] <= t1 + 1e-9:
                end_targets.update(record["targets"])
    return window_document(
        results, start=t0, end=t1, targets_start=baseline,
        targets_end=end_targets, sightings=sightings,
        addresses=len(addresses), ntp_label=ntp_label)


@pytest.mark.parametrize("start_day,end_day", [
    (0, 4),    # genesis anchor
    (2, 6),    # window straddles the day-3 checkpoint
    (4, 8),    # checkpoint anchor, crosses segment boundaries
    (3, 5),    # narrow window between checkpoints
])
def test_window_equals_full_replay_bytes(service_store, reader,
                                         start_day, end_day):
    t0, t1 = start_day * DAY, end_day * DAY
    frame = reader.window(t0, t1)
    golden = full_replay_document(service_store, t0, t1)
    assert (to_canonical_json(frame.document)
            == to_canonical_json(golden))


def test_late_windows_replay_bounded(service_store, reader):
    """A window past the first checkpoint must not start at genesis."""
    frame = reader.window(4 * DAY, 8 * DAY)
    assert frame.anchor.seq > 0, "expected a checkpoint anchor"
    total = sum(1 for _ in WalReader(service_store.wal_dir).records())
    assert frame.replayed < total


def test_anchor_respects_grab_jitter_slack(reader):
    """A checkpoint cut at the window's exact start cannot anchor it:
    grabs stamped up to protocol_delay_max past the cut may precede it
    in the log."""
    anchor = reader.anchor_for(3 * DAY)
    assert anchor.clock + 600.0 <= 3 * DAY
    # The day-3 checkpoint itself (clock == 3 days) is usable only one
    # slack further on.
    later = reader.anchor_for(3 * DAY + 600.0)
    assert later.clock == 3 * DAY


def test_horizon_is_last_closed_day(reader, service_run):
    result, _ = service_run
    days = result.daemon.config.campaign_days
    assert reader.horizon() == pytest.approx(days * DAY)


def test_series_materializes_only_complete_windows(reader, service_run):
    result, _ = service_run
    days = result.daemon.config.campaign_days
    frames = reader.series(since=0.0, window=4 * DAY, step=2 * DAY)
    assert len(frames) == (days - 4) // 2 + 1
    assert frames[-1].end <= days * DAY + 1e-9
    # A window extending past the horizon is not built at all.
    assert reader.series(since=(days - 2) * DAY,
                         window=4 * DAY, step=2 * DAY) == []


def test_window_rejects_empty_span(reader):
    with pytest.raises(ValueError, match="end must exceed start"):
        reader.window(2 * DAY, 2 * DAY)


def test_targets_are_window_deltas(reader):
    """Denominators subtract the baseline mark — not cumulative."""
    first = reader.window(0.0, 4 * DAY).document
    second = reader.window(4 * DAY, 8 * DAY).document
    full = reader.window(0.0, 8 * DAY).document
    for label in full["targets"]:
        assert (first["targets"].get(label, 0)
                + second["targets"].get(label, 0)
                == full["targets"][label])


# -- compaction vs open readers ---------------------------------------------

@pytest.fixture()
def compactable_store(service_run, tmp_path):
    """A private copy of the campaign store (compaction mutates)."""
    _, run_dir = service_run
    copy_dir = tmp_path / "copy"
    shutil.copytree(run_dir, copy_dir)
    return copy_dir


def test_incremental_reader_detects_compaction(compactable_store):
    from repro.store import IncrementalStudyReader

    # Two readers open pre-compaction: one never refreshed (still at
    # genesis), one fully caught up.
    behind = IncrementalStudyReader(RunStore.open(compactable_store))
    ahead = read_study(compactable_store)
    compacted = RunStore.open(compactable_store).compact()
    assert compacted["segments_deleted"] > 0
    # A reader already past the new horizon keeps refreshing fine...
    ahead.refresh()
    # ...but one behind it gets the typed error, not silent skips.
    with pytest.raises(CompactedBehindReader, match="compacted through"):
        behind.refresh()


def test_windowed_query_detects_compacted_anchor(compactable_store):
    reader = WindowedStudyReader(RunStore.open(compactable_store))
    before = reader.window(0.0, 4 * DAY)  # genesis anchor, still there
    assert before.anchor.seq == 0
    RunStore.open(compactable_store).compact()
    with pytest.raises(CompactedBehindReader, match="that history is gone"):
        reader.window(0.0, 4 * DAY)


def test_read_study_survives_compaction(compactable_store):
    RunStore.open(compactable_store).compact()
    reader = read_study(compactable_store)
    assert reader.last_seq > 0
