"""Serve front-end tests: concurrency, cache, metrics, shutdown.

The acceptance contract: 16 concurrent windowed queries answer
identically to a sequential one, and the ``service_*`` counters prove
no query fell back to full-WAL replay — frames build once (single
flight), later queries are cache hits, and the total replayed-record
count stays far below queries × log length.
"""

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import api
from repro.net.clock import DAY
from repro.obs import use_registry
from repro.service import QueryService, query_server
from repro.store import RunStore
from repro.store.wal import WalReader

from tests.conftest import service_config


def counter_value(registry, name):
    return sum(entry["value"]
               for entry in registry.snapshot()["counters"]
               if entry["name"] == name)


def test_sixteen_concurrent_queries_without_full_replay(service_run):
    _, run_dir = service_run
    total_records = sum(
        1 for _ in WalReader(RunStore.open(run_dir).wal_dir).records())
    with use_registry() as registry:
        server = api.serve(str(run_dir), window=4, step=2)
        try:
            sequential = query_server(server.address,
                                      {"cmd": "query"}, timeout=120.0)
            assert sequential["ok"] and sequential["windows"]

            def one(_):
                return query_server(server.address, {"cmd": "query"},
                                    timeout=120.0)

            with ThreadPoolExecutor(16) as pool:
                concurrent = list(pool.map(one, range(16)))
        finally:
            server.shutdown()

    golden = json.dumps(sequential, sort_keys=True)
    assert all(json.dumps(response, sort_keys=True) == golden
               for response in concurrent)

    # Frames built exactly once each (single-flight), everything else
    # served from the cache.
    windows = len(sequential["windows"])
    assert counter_value(registry, "service_frames_built_total") == windows
    assert (counter_value(registry, "service_frame_cache_hits_total")
            >= 16 * windows)
    assert counter_value(registry, "service_queries_total") == 17
    # Boundedness: 17 full replays would cost 17 × total × windows; the
    # anchored engine pays roughly one pass per *distinct* frame.
    replayed = counter_value(registry, "service_replay_records_total")
    assert 0 < replayed < 3 * total_records


def test_warm_cache_skips_store_entirely(service_run):
    _, run_dir = service_run
    with use_registry() as registry:
        service = QueryService(str(run_dir), window_days=4, step_days=2)
        service.query()
        built = counter_value(registry, "service_frames_built_total")
        replayed = counter_value(registry, "service_replay_records_total")
        service.query()
        # Second pass: same frames from cache, zero new window replay
        # (the horizon probe re-reads only the post-checkpoint tail,
        # which is empty for a cleanly closed campaign).
        assert (counter_value(registry, "service_frames_built_total")
                == built)
        assert (counter_value(registry, "service_replay_records_total")
                == replayed)
        stats = service.stats()
    assert stats["queries"] == 2
    assert stats["latency_p50_ms"] >= 0.0
    assert stats["latency_p99_ms"] >= stats["latency_p50_ms"]
    assert stats["cache"]["frames"] == len(service.cache)


def test_frame_cache_evicts_least_recent(service_run):
    _, run_dir = service_run
    with use_registry():
        service = QueryService(str(run_dir), window_days=1, step_days=1,
                               cache_frames=2)
        service.frame_document(0.0, 1 * DAY)
        service.frame_document(1 * DAY, 2 * DAY)
        service.frame_document(2 * DAY, 3 * DAY)  # evicts [0, 1)
        assert len(service.cache) == 2
        hits = service.cache.hits
        service.frame_document(0.0, 1 * DAY)      # rebuilt, not a hit
        assert service.cache.hits == hits


def test_unknown_command_is_reported(service_run):
    _, run_dir = service_run
    with use_registry():
        server = api.serve(str(run_dir))
        try:
            response = query_server(server.address, {"cmd": "explode"})
        finally:
            server.shutdown()
    assert not response["ok"]
    assert "cmd='explode'" in response["error"]


def test_bad_query_returns_error_not_disconnect(service_run):
    _, run_dir = service_run
    with use_registry():
        server = api.serve(str(run_dir))
        try:
            response = query_server(server.address,
                                    {"cmd": "query", "window": -1})
        finally:
            server.shutdown()
    assert not response["ok"]
    assert "window=-1" in response["error"]


def test_graceful_shutdown_flushes_live_daemon(tmp_path):
    from repro.service import CampaignDaemon
    from repro.store.checkpoint import list_checkpoints

    run_dir = tmp_path / "live"
    with use_registry():
        daemon = CampaignDaemon.create(service_config(run_dir))
        for _ in range(4):  # mid-campaign: the horizon lies further out
            daemon.tick()
        checkpoints_before = len(list_checkpoints(
            RunStore.open(run_dir).ckpt_dir))

        server = api.serve(str(run_dir), window=2, step=2, daemon=daemon)
        response = query_server(server.address,
                                {"cmd": "query"}, timeout=120.0)
        assert response["ok"]
        assert response["horizon"] == pytest.approx(4.0)
        assert len(response["windows"]) == 2

        bye = query_server(server.address, {"cmd": "shutdown"})
        assert bye["ok"]
        # A direct shutdown() call synchronizes with the wire-initiated
        # teardown — when it returns, the final checkpoint is on disk.
        server.shutdown()

    store = RunStore.open(run_dir)
    assert len(list_checkpoints(store.ckpt_dir)) > checkpoints_before
    verify = store.verify()
    assert verify["ok"], verify["problems"]
    # The flushed checkpoint anchors the whole log: day 4 closed out.
    assert verify["last_seq"] == store.inspect()["latest_checkpoint_seq"]
