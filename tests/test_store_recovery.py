"""Crash-injection tests: kill the pipeline mid-run, recover, verify.

The store's two hard invariants (ISSUE acceptance criteria):

* **no lost acked records** — every record the WAL acked (fsynced)
  before the crash survives recovery;
* **no cooldown violations** — after recovery + resume, no address was
  ever probed twice by one engine inside its cool-down TTL (checked
  offline from the admission log by ``RunStore.verify``).

Kill points are randomized per seed.  The tier-1 run uses one seed;
CI's ``store-recovery`` job widens the sweep via ``REPRO_CRASH_SEEDS``
(comma-separated), so flaky recovery paths surface there without
slowing every local run.
"""

import os
import random

import pytest

from repro import api
from repro.core.campaign import CampaignConfig
from repro.core.pipeline import ExperimentConfig
from repro.store import RunStore, fault_injection
from repro.world.population import WorldConfig

CRASH_SEEDS = [int(seed) for seed in
               os.environ.get("REPRO_CRASH_SEEDS", "1").split(",")]


class SimulatedCrash(BaseException):
    """Raised from the fault hook; BaseException so no pipeline code
    can accidentally swallow it the way a broad ``except Exception``
    would — mirroring a real SIGKILL."""


def small_config(store_dir):
    return ExperimentConfig(
        world=WorldConfig(seed=20240720, scale=0.05),
        campaign=CampaignConfig(days=5, wire_fraction=0.0),
        include_rl=False, gap_days=1, lead_days=3, final_days=1,
        checkpoint_days=2, store_dir=str(store_dir),
    )


@pytest.fixture(scope="module")
def clean_study(tmp_path_factory):
    """One uninterrupted store-backed study all crash runs compare to."""
    run_dir = tmp_path_factory.mktemp("store") / "clean"
    study = api.study(small_config(run_dir))
    verify = RunStore.open(run_dir).verify()
    assert verify["ok"] and verify["cooldown_violations"] == 0
    return {"study": study, "records": verify["records"]}


def crash_run(run_dir, hook):
    """Run the study under a fault hook expected to kill it."""
    with fault_injection(hook):
        with pytest.raises(SimulatedCrash):
            api.study(small_config(run_dir))


def assert_recovered(run_dir, clean_study, acked_at_crash):
    """The three post-recovery invariants, shared by every kill point."""
    store = RunStore.open(run_dir)
    recovery = store.recover(repair=True)
    # Invariant 1: nothing the WAL acked is gone.  (Unflushed records
    # MAY survive too — durability is one-directional.)
    assert recovery.last_seq >= acked_at_crash

    resumed = api.resume(str(run_dir))
    clean = clean_study["study"]
    # The resumed study finishes with the clean study's results.
    assert resumed.report.tables == clean.report.tables

    verify = RunStore.open(run_dir).verify()
    assert verify["ok"], verify["problems"]
    # Invariant 2: zero double-probes inside the cooldown TTL, over the
    # *whole* history including the pre-crash prefix.
    assert verify["cooldown_violations"] == 0
    # The resumed log is byte-for-byte the clean run's history.
    assert verify["records"] == clean_study["records"]


@pytest.mark.parametrize("seed", CRASH_SEEDS)
def test_random_append_kill_point(tmp_path, clean_study, seed):
    """Crash at a random record append; recover; invariants hold."""
    rng = random.Random(seed)
    kill_at = rng.randrange(1, clean_study["records"])
    run_dir = tmp_path / "crashed"
    state = {"count": 0, "acked": 0}

    def hook(point, seq, acked):
        state["acked"] = acked
        if point == "post-append":
            state["count"] += 1
            if state["count"] >= kill_at:
                raise SimulatedCrash()

    crash_run(run_dir, hook)
    assert_recovered(run_dir, clean_study, state["acked"])


@pytest.mark.parametrize("seed", CRASH_SEEDS)
def test_random_fsync_kill_point(tmp_path, clean_study, seed):
    """Crash during an fsync batch: the unflushed tail may tear."""
    rng = random.Random(seed ^ 0xF5)
    kill_at = rng.randrange(1, 20)
    run_dir = tmp_path / "crashed"
    state = {"count": 0, "acked": 0}

    def hook(point, seq, acked):
        state["acked"] = acked
        if point == "pre-fsync":
            state["count"] += 1
            if state["count"] >= kill_at:
                raise SimulatedCrash()

    crash_run(run_dir, hook)
    assert_recovered(run_dir, clean_study, state["acked"])


def test_kill_at_checkpoint(tmp_path, clean_study):
    """Crash at the checkpoint write: the WAL is synced, nothing lost."""
    run_dir = tmp_path / "crashed"
    state = {"acked": 0}

    def hook(point, seq, acked):
        state["acked"] = acked
        if point == "checkpoint":
            raise SimulatedCrash()

    crash_run(run_dir, hook)
    # The checkpoint fault point fires *after* the pre-checkpoint sync,
    # so everything appended so far is acked and must survive.
    assert state["acked"] > 0
    assert_recovered(run_dir, clean_study, state["acked"])


def test_torn_tail_after_crash_is_repaired(tmp_path, clean_study):
    """A half-written final line (torn write) is truncated on resume."""
    run_dir = tmp_path / "crashed"
    state = {"count": 0, "acked": 0}

    def hook(point, seq, acked):
        state["acked"] = acked
        if point == "post-append":
            state["count"] += 1
            if state["count"] >= 1000:
                raise SimulatedCrash()

    crash_run(run_dir, hook)
    # Simulate the torn write the crash left behind.
    store = RunStore.open(run_dir)
    from repro.store import list_segments

    with open(list_segments(store.wal_dir)[-1], "a",
              encoding="utf-8") as handle:
        handle.write('{"t": "grab", "addr": "2001:db8')
    assert_recovered(run_dir, clean_study, state["acked"])


def test_resume_of_a_completed_run_is_idempotent(tmp_path, clean_study):
    """Resuming a finished store replays it fully and changes nothing."""
    run_dir = tmp_path / "complete"
    study = api.study(small_config(run_dir))
    before = RunStore.open(run_dir).verify()
    resumed = api.resume(str(run_dir))
    assert resumed.report.tables == study.report.tables
    after = RunStore.open(run_dir).verify()
    assert after["records"] == before["records"]
    assert after["ok"]


def test_resume_after_compaction_verifies_the_chain(tmp_path, clean_study):
    """Compaction deletes the prefix; resume still validates via chain."""
    run_dir = tmp_path / "crashed"
    state = {"count": 0}

    def hook(point, seq, acked):
        if point == "post-append":
            state["count"] += 1
            # Past the first checkpoint (day 2), so compaction has a
            # horizon to work with.
            if state["count"] >= int(clean_study["records"] * 0.8):
                raise SimulatedCrash()

    crash_run(run_dir, hook)
    store = RunStore.open(run_dir)
    store.recover(repair=True)
    report = store.compact()
    assert report["segments_deleted"] > 0
    resumed = api.resume(str(run_dir))
    assert resumed.report.tables == clean_study["study"].report.tables
    assert RunStore.open(run_dir).verify()["ok"]


def test_worker_crash_then_resume_reaches_golden(tmp_path, clean_study,
                                                 monkeypatch):
    """A multiprocess run killed by a dying worker resumes to the clean
    study's tables.  The parallel backend merges (and therefore writes
    WAL records for) a batch only after *every* shard returns, so a
    worker crash leaves no partial batch behind — the store recovers
    exactly as it would from a sequential crash."""
    from repro.runtime.parallel import CRASH_ENV, WorkerCrashed

    from dataclasses import replace

    run_dir = tmp_path / "crashed"
    # Same shard count as the clean reference: the SSH key-reuse dedup
    # makes the security table sensitive to *shard count* (merge order
    # picks the key's representative grab), so golden-tables claims only
    # hold between runs at equal shard layout.  Execution mode (workers)
    # is what this test varies — and must not matter.
    config = replace(small_config(run_dir), parallel_workers=2)
    # 0:100 targets the hitlist batch: the per-sighting ntp feed path
    # stays in-process, so only the pooled hitlist scan can die here.
    monkeypatch.setenv(CRASH_ENV, "0:100")
    with pytest.raises(WorkerCrashed):
        api.study(config)

    monkeypatch.delenv(CRASH_ENV)
    store = RunStore.open(run_dir)
    store.recover(repair=True)
    resumed = api.resume(str(run_dir))
    # Minus the wall-clock-only "parallel"/"parallel_analysis" tables,
    # the resumed parallel study lands on the clean sequential study's
    # tables exactly.
    resumed_tables = dict(resumed.report.tables)
    resumed_tables.pop("parallel", None)
    resumed_tables.pop("parallel_analysis", None)
    assert resumed_tables == clean_study["study"].report.tables
    verify = RunStore.open(run_dir).verify()
    assert verify["ok"], verify["problems"]
    assert verify["cooldown_violations"] == 0


def test_divergent_config_is_rejected(tmp_path, clean_study):
    """Resuming under a different config fails loudly, never forks."""
    import json

    run_dir = tmp_path / "crashed"
    state = {"count": 0}

    def hook(point, seq, acked):
        if point == "post-append":
            state["count"] += 1
            if state["count"] >= 500:
                raise SimulatedCrash()

    crash_run(run_dir, hook)
    meta_path = run_dir / "meta.json"
    meta = json.loads(meta_path.read_text())
    meta["config"]["world"]["seed"] = 999  # not the seed that ran
    meta_path.write_text(json.dumps(meta))
    with pytest.raises(ValueError, match="diverged"):
        api.resume(str(run_dir))
