"""Golden equivalence tests for the run store.

Two equalities pin the store's semantics at full report depth (tables
AND every metric series, not just headline tables):

* **transparency** — a store-backed study equals a plain study.  The
  store observes the pipeline; it must never perturb it.
* **exact resume** — a study crashed mid-run and resumed equals the
  same study run uninterrupted.  Deterministic replay means recovery
  reconstructs the run, not an approximation of it.

The comparisons strip only what the store itself necessarily adds: its
own ``store_*`` metric series, the store-writer stage counters, and the
``store_dir`` config field.  Everything else must match exactly.
"""

import copy
import json

import pytest

from repro import api, cli
from repro.core.campaign import CampaignConfig
from repro.core.pipeline import ExperimentConfig
from repro.store import RunStore, fault_injection
from repro.world.population import WorldConfig


class SimulatedCrash(BaseException):
    pass


def golden_config(store_dir=None, **overrides):
    base = dict(
        world=WorldConfig(seed=20240720, scale=0.05),
        campaign=CampaignConfig(days=5, wire_fraction=0.0),
        include_rl=False, gap_days=1, lead_days=3, final_days=1,
        checkpoint_days=2,
        store_dir=None if store_dir is None else str(store_dir),
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def strip_store(report, *, stage_series=True):
    """A report document minus the series/fields only a store run has."""
    document = copy.deepcopy(report.as_document())
    document["config"].pop("store_dir", None)

    def keep(entry):
        if entry["name"].startswith("store_"):
            return False
        if stage_series and entry["labels"].get("stage") == "store-writer":
            return False
        return True

    for kind, entries in document["metrics"].items():
        document["metrics"][kind] = [e for e in entries if keep(e)]
    return document


@pytest.fixture(scope="module")
def plain_study():
    return api.study(golden_config())


@pytest.fixture(scope="module")
def stored_study(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("golden") / "stored"
    return api.study(golden_config(run_dir)), run_dir


def test_store_backed_study_is_transparent(plain_study, stored_study):
    stored, _ = stored_study
    assert (strip_store(stored.report)
            == strip_store(plain_study.report))


def test_stored_run_verifies_clean(stored_study):
    _, run_dir = stored_study
    verify = RunStore.open(run_dir).verify()
    assert verify["ok"], verify["problems"]
    assert verify["cooldown_violations"] == 0
    # Every record kind the pipeline emits shows up in the log.
    assert set(verify["records_by_kind"]) == {"sighting", "admit",
                                              "grab", "mark"}
    # checkpoint_days=2 over 3 lead days + 1 final day → two periodic
    # checkpoints, plus the final one at completion.
    inspect = RunStore.open(run_dir).inspect()
    assert inspect["checkpoints"] >= 2


def test_crashed_then_resumed_equals_uninterrupted(tmp_path, stored_study):
    stored, _ = stored_study
    run_dir = tmp_path / "crashed"
    state = {"count": 0}

    def hook(point, seq, acked):
        if point == "post-append":
            state["count"] += 1
            if state["count"] >= 20_000:  # mid final-scan territory
                raise SimulatedCrash()

    with fault_injection(hook):
        with pytest.raises(SimulatedCrash):
            api.study(golden_config(run_dir))

    resumed = api.resume(str(run_dir))
    # Replay re-marks every replayed record through the store-writer
    # stage, so stage counters legitimately differ; all other series —
    # campaign, engines, bus, analysis — must match exactly.
    assert (strip_store(resumed.report)
            == strip_store(stored.report))
    # And at table level nothing is stripped at all.
    assert resumed.report.tables == stored.report.tables


def test_analyze_from_store_matches_saved_results(tmp_path, stored_study):
    """The WAL's grab records reconstruct the exact same ScanResults as
    the in-memory objects serialized through the save/load path."""
    from repro.io import save_results

    stored, run_dir = stored_study
    ntp_path = tmp_path / "ntp.jsonl"
    hitlist_path = tmp_path / "hitlist.jsonl"
    save_results(stored.experiment.ntp_scan, str(ntp_path))
    save_results(stored.experiment.hitlist_scan, str(hitlist_path))

    from_store = api.analyze(api.AnalyzeConfig(run_dir=str(run_dir)))
    from_files = api.analyze(api.AnalyzeConfig(ntp_path=str(ntp_path),
                                               hitlist_path=str(hitlist_path)))
    assert from_store.report.tables == from_files.report.tables


def test_cli_resume_lands_on_the_stored_tables(stored_study, capsys):
    """``study --resume`` on a completed store replays it exactly."""
    stored, run_dir = stored_study
    assert cli.main(["study", "--resume", str(run_dir),
                     "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["tables"] == stored.report.as_document()["tables"]

    assert cli.main(["store", "verify", str(run_dir)]) == 0
    assert "OK" in capsys.readouterr().out


def test_cli_store_flags_reach_the_config(monkeypatch, capsys):
    """--store/--checkpoint-days flow into ExperimentConfig untouched."""
    captured = {}

    def fake_study(config):
        captured["config"] = config
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.runreport import RunReport

        report = RunReport.build("study", {}, MetricsRegistry(), {})
        return api.StudyResult(experiment=None, report=report)

    monkeypatch.setattr(api, "study", fake_study)
    assert cli.main(["study", "--store", "/tmp/x", "--checkpoint-days",
                     "3", "--format", "json"]) == 0
    capsys.readouterr()
    assert captured["config"].store_dir == "/tmp/x"
    assert captured["config"].checkpoint_days == 3


def test_resume_of_a_dir_that_is_not_a_store_errors(tmp_path):
    with pytest.raises(ValueError):
        api.resume(str(tmp_path / "nowhere"))
