"""Unit tests for the durable run store: WAL, checkpoints, recovery.

The crash-injection and golden-resume suites exercise the store through
the full pipeline; these tests pin the primitives' contracts directly —
framing, CRCs, segment rolling, fsync acking, torn-tail repair,
checkpoint atomicity, compaction arithmetic, and the CLI surface.
"""

import json
import random

import pytest

from repro.cli import main
from repro.store import (
    Checkpoint,
    RunStore,
    StoreWriter,
    WalError,
    WalReader,
    WalWriter,
    chain_extend,
    fault_injection,
    latest_checkpoint,
    list_segments,
    load_checkpoint,
    read_study,
    record_crc,
    save_checkpoint,
    segment_name,
    verify_record,
)
from repro.store.wal import read_all, segment_first_seq

COOLDOWN = 259_200.0  # the engine default: 3 simulated days


def make_store(tmp_path, **overrides):
    params = dict(config={"seed": 7}, cooldown_ttl=COOLDOWN,
                  segment_max_records=4, fsync_every=2)
    params.update(overrides)
    return RunStore.create(tmp_path / "run", **params)


def sighting(i):
    return {"t": "sighting", "addr": f"2001:db8::{i:x}",
            "time": float(i), "server": "Germany"}


class TestRecordFraming:
    def test_crc_round_trip(self):
        payload = sighting(1)
        crc = record_crc(5, payload)
        assert verify_record({"crc": crc, "seq": 5, **payload})

    def test_crc_detects_any_field_change(self):
        payload = sighting(1)
        record = {"crc": record_crc(5, payload), "seq": 5, **payload}
        assert not verify_record({**record, "time": 2.0})
        assert not verify_record({**record, "seq": 6})

    def test_crc_covers_non_ascii(self):
        a = record_crc(1, {"t": "mark", "server": "Köln"})
        b = record_crc(1, {"t": "mark", "server": "Koln"})
        assert a != b

    def test_chain_is_order_sensitive(self):
        one, two = record_crc(1, sighting(1)), record_crc(2, sighting(2))
        assert (chain_extend(chain_extend(0, one), two)
                != chain_extend(chain_extend(0, two), one))

    def test_segment_names_sort_with_sequence(self):
        names = [segment_name(seq) for seq in (1, 9, 10, 3000, 10**11)]
        assert names == sorted(names)
        assert segment_first_seq(segment_name(10**11)) == 10**11


class TestWalWriter:
    def test_rolls_segments_at_max_records(self, tmp_path):
        writer = WalWriter(tmp_path, segment_max_records=3, fsync_every=1)
        for i in range(7):
            writer.append(sighting(i))
        writer.close()
        segments = list_segments(tmp_path)
        assert [p.name for p in segments] == [
            segment_name(1), segment_name(4), segment_name(7)]

    def test_ack_advances_only_on_fsync(self, tmp_path):
        writer = WalWriter(tmp_path, fsync_every=3)
        writer.append(sighting(0))
        writer.append(sighting(1))
        assert writer.acked_seq == 0  # batch not full, nothing synced
        writer.append(sighting(2))
        assert writer.acked_seq == 3  # batch boundary fsynced
        writer.append(sighting(3))
        assert writer.sync() == 4
        writer.close()

    def test_reader_reproduces_writer_chain(self, tmp_path):
        writer = WalWriter(tmp_path, segment_max_records=5, fsync_every=2)
        for i in range(13):
            writer.append(sighting(i))
        writer.close()
        records, reader = read_all(tmp_path)
        assert len(records) == 13
        assert reader.last_seq == writer.last_seq
        assert reader.chain == writer.chain

    def test_large_sequence_numbers_survive(self, tmp_path):
        """seq > 2^53 (beyond float53 precision) must round-trip exactly."""
        start = 2**53 + 3
        writer = WalWriter(tmp_path, next_seq=start)
        writer.append(sighting(1))
        writer.close()
        records, reader = read_all(tmp_path, start_seq=start)
        assert records[0]["seq"] == start
        assert reader.last_seq == start

    def test_non_ascii_payloads_round_trip(self, tmp_path):
        writer = WalWriter(tmp_path)
        payload = {"t": "mark", "phase": "día-final", "day": 1,
                   "clock": 0.0, "targets": {"ntp-köln": 5}}
        writer.append(payload)
        writer.close()
        records, _ = read_all(tmp_path)
        assert records[0]["phase"] == "día-final"
        assert records[0]["targets"] == {"ntp-köln": 5}


class TestWalReader:
    def _write(self, tmp_path, count, **kwargs):
        writer = WalWriter(tmp_path, **kwargs)
        for i in range(count):
            writer.append(sighting(i))
        writer.close()
        return writer

    def test_torn_tail_is_tolerated_and_repaired(self, tmp_path):
        self._write(tmp_path, 5, segment_max_records=10)
        segment = list_segments(tmp_path)[-1]
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write('{"t": "sighting", "half')  # crash mid-write
        records, reader = read_all(tmp_path, repair=True)
        assert len(records) == 5
        assert reader.truncated_lines == 1
        # Repair truncated the file: a fresh read sees a clean log.
        records, reader = read_all(tmp_path)
        assert len(records) == 5 and reader.truncated_lines == 0

    def test_corruption_in_the_middle_raises(self, tmp_path):
        self._write(tmp_path, 6, segment_max_records=10)
        segment = list_segments(tmp_path)[0]
        lines = segment.read_text().splitlines()
        lines[2] = lines[2].replace("sighting", "sabotage")
        segment.write_text("\n".join(lines) + "\n")
        with pytest.raises(WalError, match="corrupt WAL record"):
            list(WalReader(tmp_path).records())

    def test_sequence_gap_raises(self, tmp_path):
        self._write(tmp_path, 6, segment_max_records=10)
        segment = list_segments(tmp_path)[0]
        lines = segment.read_text().splitlines()
        del lines[2]
        segment.write_text("\n".join(lines) + "\n")
        with pytest.raises(WalError, match="sequence gap"):
            list(WalReader(tmp_path).records())


class TestCheckpoints:
    def test_save_load_round_trip(self, tmp_path):
        checkpoint = Checkpoint(seq=42, chain=0xDEAD,
                                state={"clock": 86400.0, "targets": {"ntp": 7}})
        path = save_checkpoint(tmp_path, checkpoint)
        loaded = load_checkpoint(path)
        assert loaded == checkpoint

    def test_corrupt_checkpoint_is_rejected_and_skipped(self, tmp_path):
        save_checkpoint(tmp_path, Checkpoint(seq=10, chain=1, state={}))
        newest = save_checkpoint(tmp_path, Checkpoint(seq=20, chain=2,
                                                      state={}))
        newest.write_text(newest.read_text().replace('"chain": 2',
                                                     '"chain": 3'))
        with pytest.raises(WalError, match="CRC mismatch"):
            load_checkpoint(newest)
        # latest_checkpoint falls back to the next-newest valid file.
        assert latest_checkpoint(tmp_path).seq == 10

    def test_tmp_files_are_invisible(self, tmp_path):
        save_checkpoint(tmp_path, Checkpoint(seq=10, chain=1, state={}))
        (tmp_path / "ckpt-000000000020.json.tmp").write_text("{}")
        assert latest_checkpoint(tmp_path).seq == 10


class TestRunStore:
    def test_create_refuses_to_clobber(self, tmp_path):
        make_store(tmp_path)
        with pytest.raises(WalError, match="already exists"):
            make_store(tmp_path)

    def test_open_requires_meta(self, tmp_path):
        with pytest.raises(WalError, match="not a run store"):
            RunStore.open(tmp_path)

    def test_recover_then_append_continues_sequence(self, tmp_path):
        store = make_store(tmp_path)
        writer = store.new_writer()
        for i in range(6):
            writer.append(sighting(i))
        writer.close()
        recovery = store.recover()
        assert recovery.last_seq == 6
        writer = store.writer_for_append(recovery)
        assert writer.append(sighting(6)) == 7
        writer.close()
        assert store.recover().last_seq == 7

    def test_compact_drops_only_checkpointed_whole_segments(self, tmp_path):
        store = make_store(tmp_path)  # 4 records per segment
        writer = store.new_writer()
        for i in range(10):
            writer.append(sighting(i))
        writer.sync()
        store.write_checkpoint(Checkpoint(seq=writer.last_seq,
                                          chain=writer.chain, state={}))
        writer.close()
        report = store.compact()
        # Segments [1..4] and [5..8] go; [9..10] is the last segment.
        assert report["segments_deleted"] == 2
        assert report["compacted_through"] == 8
        recovery = store.recover()
        assert recovery.compacted_through == 8
        assert [r["seq"] for r in recovery.records] == [9, 10]
        assert store.verify()["ok"]

    def test_compact_without_checkpoint_is_a_noop(self, tmp_path):
        store = make_store(tmp_path)
        writer = store.new_writer()
        for i in range(10):
            writer.append(sighting(i))
        writer.close()
        assert store.compact()["segments_deleted"] == 0
        assert len(list_segments(store.wal_dir)) == 3

    def test_verify_flags_cooldown_violation(self, tmp_path):
        store = make_store(tmp_path)
        writer = store.new_writer()
        admit = {"t": "admit", "engine": "ntp", "addr": "2001:db8::1",
                 "time": 100.0}
        writer.append(admit)
        writer.append({**admit, "time": 100.0 + COOLDOWN / 2})
        writer.close()
        report = store.verify()
        assert not report["ok"]
        assert report["cooldown_violations"] == 1

    def test_verify_accepts_readmission_after_ttl(self, tmp_path):
        store = make_store(tmp_path)
        writer = store.new_writer()
        admit = {"t": "admit", "engine": "ntp", "addr": "2001:db8::1",
                 "time": 100.0}
        writer.append(admit)
        writer.append({**admit, "time": 100.0 + COOLDOWN})
        writer.close()
        assert store.verify()["ok"]


class TestStoreWriterUnit:
    def test_fresh_writer_is_live(self, tmp_path):
        store = make_store(tmp_path)
        writer = StoreWriter(store)
        assert writer.mode == "live"
        writer.emit(sighting(0))
        writer.close()
        assert store.recover().last_seq == 1

    def test_verify_mode_switches_live_at_log_end(self, tmp_path):
        store = make_store(tmp_path)
        writer = StoreWriter(store)
        for i in range(5):
            writer.emit(sighting(i))
        writer.close()
        replay = StoreWriter(store, recovery=store.recover())
        assert replay.mode == "verify"
        for i in range(5):
            replay.emit(sighting(i))
        assert replay.mode == "live"
        replay.emit(sighting(5))
        replay.close()
        assert store.recover().last_seq == 6

    def test_divergent_replay_raises(self, tmp_path):
        store = make_store(tmp_path)
        writer = StoreWriter(store)
        writer.emit(sighting(0))
        writer.close()
        replay = StoreWriter(store, recovery=store.recover())
        with pytest.raises(WalError, match="diverged"):
            replay.emit(sighting(99))

    def test_short_replay_fails_loudly_on_close(self, tmp_path):
        store = make_store(tmp_path)
        writer = StoreWriter(store)
        writer.emit(sighting(0))
        writer.emit(sighting(1))
        writer.close()
        replay = StoreWriter(store, recovery=store.recover())
        replay.emit(sighting(0))
        with pytest.raises(WalError, match="log continues"):
            replay.close()

    def test_fault_hook_sees_durability_points(self, tmp_path):
        store = make_store(tmp_path)
        points = []
        with fault_injection(lambda point, seq, acked:
                             points.append(point)):
            writer = StoreWriter(store)
            writer.emit(sighting(0))
            writer.emit(sighting(1))  # fsync_every=2 → batch syncs
            writer.close()
        assert "pre-append" in points and "post-append" in points
        assert "pre-fsync" in points and "post-fsync" in points


class TestIncrementalReader:
    def test_refresh_folds_only_the_new_tail(self, tmp_path):
        store = make_store(tmp_path)
        writer = StoreWriter(store)
        writer.emit(sighting(0))
        writer.mark("lead", 1, 86400.0, {"ntp": 1})
        writer.close()
        reader = read_study(store.run_dir)
        assert reader.sightings == 1
        assert reader.scan("ntp").targets_seen == 1

        recovery = store.recover()
        append = store.writer_for_append(recovery)
        append.append(sighting(1))
        append.append({"t": "mark", "phase": "lead", "day": 2,
                       "clock": 2 * 86400.0, "targets": {"ntp": 2}})
        append.close()
        assert reader.refresh() == 2  # only the two new records
        assert reader.sightings == 2
        assert reader.scan("ntp").targets_seen == 2


class TestStoreCli:
    @pytest.fixture()
    def run_dir(self, tmp_path):
        store = make_store(tmp_path)
        writer = store.new_writer()
        rng = random.Random(11)
        for i in range(10):
            writer.append(sighting(rng.randrange(1 << 32)))
        writer.sync()
        store.write_checkpoint(Checkpoint(seq=writer.last_seq,
                                          chain=writer.chain, state={}))
        writer.close()
        return str(store.run_dir)

    def test_inspect(self, run_dir, capsys):
        assert main(["store", "inspect", run_dir]) == 0
        out = capsys.readouterr().out
        assert "segments: 3" in out
        assert "checkpoints: 1" in out

    def test_inspect_json(self, run_dir, capsys):
        assert main(["store", "inspect", run_dir,
                     "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["segments"] == 3
        assert document["latest_checkpoint_seq"] == 10

    def test_verify_ok(self, run_dir, capsys):
        assert main(["store", "verify", run_dir]) == 0
        assert capsys.readouterr().out.startswith("OK")

    def test_verify_corrupt_exits_one(self, run_dir, capsys):
        store = RunStore.open(run_dir)
        segment = list_segments(store.wal_dir)[0]
        lines = segment.read_text().splitlines()
        lines[1] = lines[1].replace("sighting", "sabotage")
        segment.write_text("\n".join(lines) + "\n")
        assert main(["store", "verify", run_dir]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_compact(self, run_dir, capsys):
        assert main(["store", "compact", run_dir]) == 0
        assert "compacted 2 segments" in capsys.readouterr().out
        assert main(["store", "verify", run_dir]) == 0

    def test_open_error_exits_two(self, tmp_path, capsys):
        assert main(["store", "inspect", str(tmp_path)]) == 2
        assert "not a run store" in capsys.readouterr().err

    def test_analyze_config_needs_a_source(self, capsys):
        assert main(["analyze"]) == 2
        assert "analyze needs both" in capsys.readouterr().err
