"""Unit tests for keys, certificates, and the mini TLS handshake."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ipv6 import parse
from repro.proto.http import HttpRequest, HttpResponse, HttpServerSession
from repro.proto.tls_session import PlainService, TlsService
from repro.tlslib.certificate import (
    PUBLIC_CA,
    Certificate,
    CertificateDecodeError,
    issue_public,
    issue_self_signed,
)
from repro.tlslib.handshake import (
    ALERT_UNRECOGNIZED_NAME,
    HandshakeStatus,
    TlsTerminator,
    client_hello,
    parse_client_hello,
    perform_handshake,
)
from repro.tlslib.keys import KeyPool, derive_key, unique_fingerprints


class TestKeys:
    def test_derivation_deterministic(self):
        assert derive_key("a") == derive_key("a")
        assert derive_key("a") != derive_key("b")

    def test_algorithm_in_derivation(self):
        assert derive_key("a", "rsa-2048") != derive_key("a", "ssh-ed25519")

    def test_short_form(self):
        key = derive_key("x")
        assert key.short == key.hex[:8]

    def test_unique_fingerprints(self):
        keys = [derive_key("a"), derive_key("a"), derive_key("b")]
        assert unique_fingerprints(keys) == 2


class TestKeyPool:
    def test_full_reuse_stays_in_pool(self):
        pool = KeyPool("p", size=3, reuse_rate=1.0)
        rng = random.Random(1)
        drawn = {pool.draw(rng).fingerprint for _ in range(50)}
        assert len(drawn) <= 3
        assert drawn <= {k.fingerprint for k in pool.shared_keys()}

    def test_no_reuse_all_unique(self):
        pool = KeyPool("p", size=3, reuse_rate=0.0)
        rng = random.Random(1)
        drawn = [pool.draw(rng).fingerprint for _ in range(20)]
        assert len(set(drawn)) == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            KeyPool("p", size=0, reuse_rate=0.5)
        with pytest.raises(ValueError):
            KeyPool("p", size=1, reuse_rate=1.5)


class TestCertificates:
    def test_public_cert_trusted(self):
        cert = issue_public("example.sim")
        assert cert.publicly_trusted
        assert not cert.self_signed
        assert cert.issuer == PUBLIC_CA

    def test_self_signed(self):
        cert = issue_self_signed("fritz.box")
        assert cert.self_signed
        assert not cert.publicly_trusted

    def test_expiry(self):
        cert = issue_public("x", issued_at=0.0, lifetime=100.0)
        assert cert.valid_at(50.0)
        assert cert.expired(101.0)
        assert not cert.valid_at(-1.0)

    def test_fingerprint_stable_and_distinct(self):
        cert_a = issue_public("a.sim")
        cert_b = issue_public("b.sim")
        assert cert_a.fingerprint == issue_public("a.sim").fingerprint
        assert cert_a.fingerprint != cert_b.fingerprint

    def test_encode_decode_roundtrip(self):
        cert = issue_public("example.sim", issued_at=123.0)
        decoded = Certificate.decode(cert.encode())
        assert decoded == cert

    def test_decode_rejects_garbage(self):
        with pytest.raises(CertificateDecodeError):
            Certificate.decode(b"\x00\x05ab")

    def test_hostname_matching(self):
        cert = Certificate(
            subject="example.sim", issuer=PUBLIC_CA,
            not_before=0, not_after=1, key=derive_key("k"),
            san=("example.sim", "*.cdn.sim"),
        )
        assert cert.matches_hostname("example.sim")
        assert cert.matches_hostname("edge1.cdn.sim")
        assert not cert.matches_hostname("deep.edge1.cdn.sim")
        assert not cert.matches_hostname("other.sim")

    @given(subject=st.text(min_size=1, max_size=40),
           lifetime=st.floats(min_value=1, max_value=1e9))
    def test_roundtrip_property(self, subject, lifetime):
        cert = issue_self_signed(subject, lifetime=lifetime)
        assert Certificate.decode(cert.encode()) == cert


class TestClientHello:
    def test_sni_roundtrip(self):
        assert parse_client_hello(client_hello("example.sim")) == "example.sim"

    def test_no_sni(self):
        assert parse_client_hello(client_hello(None)) is None

    def test_rejects_http(self):
        from repro.tlslib.handshake import TlsDecodeError
        with pytest.raises(TlsDecodeError):
            parse_client_hello(b"GET / HTTP/1.1\r\n\r\n")


class TestTerminator:
    def test_default_certificate_served(self):
        cert = issue_public("x.sim")
        terminator = TlsTerminator(cert)
        response = terminator.respond(client_hello(None))
        assert response[0] == 22  # handshake record

    def test_sni_required_alerts_without_hostname(self):
        cert = issue_public("cdn.sim")
        terminator = TlsTerminator(None, require_sni=True,
                                   sni_certificates={"cdn.sim": cert})
        response = terminator.respond(client_hello(None))
        assert response[0] == 21  # alert record
        assert response[-1] == ALERT_UNRECOGNIZED_NAME

    def test_sni_required_serves_with_hostname(self):
        cert = issue_public("cdn.sim")
        terminator = TlsTerminator(None, require_sni=True,
                                   sni_certificates={"cdn.sim": cert})
        response = terminator.respond(client_hello("cdn.sim"))
        assert response[0] == 22

    def test_needs_some_certificate(self):
        with pytest.raises(ValueError):
            TlsTerminator(None)


class TestHandshakeOverNetwork:
    SRC = parse("2001:db8::1")
    DST = parse("2001:db8::2")

    def _serve(self, network, terminator):
        network.add_host(self.DST).bind_tcp(
            443, TlsService(terminator, lambda: HttpServerSession("Page")))
        return network.tcp_connect(self.SRC, self.DST, 443)

    def test_successful_handshake_returns_cert(self, network):
        cert = issue_self_signed("fritz.box")
        stream = self._serve(network, TlsTerminator(cert))
        result = perform_handshake(stream)
        assert result.status is HandshakeStatus.OK
        assert result.certificate.fingerprint == cert.fingerprint

    def test_http_after_handshake(self, network):
        cert = issue_self_signed("fritz.box")
        stream = self._serve(network, TlsTerminator(cert))
        perform_handshake(stream)
        raw = stream.write(HttpRequest("GET", "/").encode())
        assert HttpResponse.decode(raw).title == "Page"

    def test_sni_required_alert_surface(self, network):
        cert = issue_public("cdn.sim")
        terminator = TlsTerminator(None, require_sni=True,
                                   sni_certificates={"cdn.sim": cert})
        stream = self._serve(network, terminator)
        result = perform_handshake(stream, hostname=None)
        assert result.status is HandshakeStatus.ALERT
        assert result.alert_description == ALERT_UNRECOGNIZED_NAME

    def test_sni_supplied_succeeds(self, network):
        cert = issue_public("cdn.sim")
        terminator = TlsTerminator(None, require_sni=True,
                                   sni_certificates={"cdn.sim": cert})
        stream = self._serve(network, terminator)
        result = perform_handshake(stream, hostname="cdn.sim")
        assert result.succeeded

    def test_plaintext_server_not_tls(self, network):
        network.add_host(self.DST).bind_tcp(
            443, PlainService(lambda: HttpServerSession("x")))
        stream = network.tcp_connect(self.SRC, self.DST, 443)
        result = perform_handshake(stream)
        assert result.status is HandshakeStatus.NOT_TLS
