"""Unit tests for the AS database."""

import pytest

from repro.world.asdb import (
    EYEBALL,
    AsDatabase,
    AutonomousSystem,
    build_asdb,
)


@pytest.fixture()
def db():
    database = AsDatabase()
    database.register(AutonomousSystem(64500, "Eyeball-1", EYEBALL, "DE"),
                      block_count=2)
    database.register(AutonomousSystem(64501, "Host-1", "Content", "US"))
    return database


class TestRegistration:
    def test_duplicate_asn_rejected(self, db):
        with pytest.raises(ValueError):
            db.register(AutonomousSystem(64500, "dup", EYEBALL, "DE"))

    def test_bad_block_count_rejected(self, db):
        with pytest.raises(ValueError):
            db.register(AutonomousSystem(64502, "x", EYEBALL, "DE"),
                        block_count=0)

    def test_blocks_allocated(self, db):
        assert len(db.blocks_of(64500)) == 2
        assert len(db.blocks_of(64501)) == 1

    def test_blocks_disjoint(self, db):
        all_blocks = db.blocks_of(64500) + db.blocks_of(64501)
        assert len(set(all_blocks)) == len(all_blocks)


class TestLookup:
    def test_lookup_inside_block(self, db):
        block = db.blocks_of(64500)[0]
        assert db.lookup(block + 12345).number == 64500
        assert db.lookup_asn(block + 12345) == 64500

    def test_lookup_unrouted(self, db):
        assert db.lookup(0) is None
        assert db.lookup_asn(0) is None

    def test_country_of(self, db):
        block = db.blocks_of(64501)[0]
        assert db.country_of(block + 1) == "US"
        assert db.country_of(0) is None


class TestPrefixFor:
    def test_deterministic(self, db):
        assert db.prefix_for(64500, 5) == db.prefix_for(64500, 5)

    def test_distinct_indices_distinct_prefixes(self, db):
        prefixes = {db.prefix_for(64500, index, 56) for index in range(100)}
        assert len(prefixes) == 100

    def test_prefix_inside_own_block(self, db):
        prefix = db.prefix_for(64500, 3, 48)
        assert db.lookup_asn(prefix) == 64500

    def test_round_robin_over_blocks(self, db):
        first = db.prefix_for(64500, 0, 48)
        second = db.prefix_for(64500, 1, 48)
        assert (first >> 96) != (second >> 96)

    def test_exhaustion_raises(self, db):
        with pytest.raises(ValueError):
            db.prefix_for(64501, 1 << 20, 48)


class TestAggregates:
    def test_distinct_as_count(self, db):
        addresses = [db.blocks_of(64500)[0] + 1,
                     db.blocks_of(64500)[1] + 1,
                     db.blocks_of(64501)[0] + 1,
                     0]  # unrouted
        assert db.distinct_as_count(addresses) == 2

    def test_category_share(self, db):
        addresses = [db.blocks_of(64500)[0] + 1,  # eyeball
                     db.blocks_of(64501)[0] + 1,  # content
                     0]                            # unrouted
        assert db.category_share(addresses, EYEBALL) == pytest.approx(1 / 3)

    def test_category_share_empty(self, db):
        assert db.category_share([], EYEBALL) == 0.0


class TestBuildAsdb:
    def test_standard_layout(self):
        db = build_asdb(["DE", "US"], eyeballs_per_country=2)
        eyeballs = [s for s in db.systems if s.category == EYEBALL]
        assert len(eyeballs) == 4
        countries = {s.country for s in eyeballs}
        assert countries == {"DE", "US"}

    def test_clouds_have_multiple_blocks(self):
        db = build_asdb(["DE"], cloud_count=2)
        clouds = [s for s in db.systems if s.name.startswith("HyperCloud")]
        assert len(clouds) == 2
        for cloud in clouds:
            assert len(db.blocks_of(cloud.number)) == 4

    def test_deterministic(self):
        import random
        first = build_asdb(["DE", "US"], rng=random.Random(1))
        second = build_asdb(["DE", "US"], rng=random.Random(1))
        assert [s.name for s in first.systems] == \
            [s.name for s in second.systems]
