"""Unit tests for dynamic addressing churn."""

import random

import pytest

from repro.ipv6 import parse, prefix
from repro.net.simnet import Network
from repro.world.churn import ChurnModel, Premises, stable_premises
from repro.world.devices import make_client_device, make_fritzbox


@pytest.fixture()
def setup():
    network = Network()
    rng = random.Random(5)
    allocations = iter(range(1, 100))

    def fresh(site):
        return parse("2001:db8::") + (next(allocations) << 72)

    churn = ChurnModel(network, rng, fresh)
    site = Premises(site_id=0, asn=64500, country="DE",
                    prefix56=parse("2001:db8::"), rotation_rate=1.0)
    router = make_fritzbox(rng, 0, 0x3C3786000001)
    phone = make_client_device(rng, 0, None, "Samsung", addressing="privacy")
    for slot, device in enumerate([router, phone]):
        device.assign_address(site.device_prefix64(slot), rng)
        device.materialize(network)
        site.devices.append(device)
    churn.register(site)
    return network, churn, site, router, phone


class TestPrefixRotation:
    def test_rotation_moves_all_devices(self, setup):
        network, churn, site, router, phone = setup
        old_router, old_phone = router.address, phone.address
        churn.step_day()
        assert router.address != old_router
        assert phone.address != old_phone
        assert churn.rotations == 1

    def test_devices_stay_inside_new_56(self, setup):
        network, churn, site, router, phone = setup
        churn.step_day()
        assert prefix(router.address, 56) == site.prefix56
        assert prefix(phone.address, 56) == site.prefix56

    def test_old_addresses_dead(self, setup):
        network, churn, site, router, phone = setup
        old = router.address
        churn.step_day()
        assert network.host(old) is None
        assert network.host(router.address) is not None

    def test_static_site_never_rotates(self, setup):
        network, churn, site, router, phone = setup
        site.rotation_rate = 0.0
        old = router.address
        for _ in range(5):
            churn.step_day()
        assert router.address == old
        assert churn.rotations == 0
        assert stable_premises(site)


class TestPrivacyRotation:
    def test_privacy_iid_rotates_daily_without_prefix_change(self, setup):
        network, churn, site, router, phone = setup
        site.rotation_rate = 0.0
        old_phone = phone.address
        old_router = router.address
        churn.step_day()
        assert phone.address != old_phone
        assert router.address == old_router  # EUI-64 IIDs are stable
        assert prefix(phone.address, 64) == prefix(old_phone, 64)
        assert churn.iid_rotations == 1

    def test_address_accumulation(self, setup):
        """A privacy device visits a new address every day — the effect
        that inflates NTP-collected address counts."""
        network, churn, site, router, phone = setup
        site.rotation_rate = 0.0
        seen = {phone.address}
        for _ in range(10):
            churn.step_day()
            seen.add(phone.address)
        assert len(seen) == 11


class TestSlots:
    def test_slot_out_of_range(self):
        site = Premises(site_id=0, asn=1, country="DE", prefix56=0)
        with pytest.raises(ValueError):
            site.device_prefix64(256)

    def test_slots_distinct_64s(self):
        site = Premises(site_id=0, asn=1, country="DE",
                        prefix56=parse("2001:db8::"))
        assert site.device_prefix64(0) != site.device_prefix64(1)
        assert prefix(site.device_prefix64(5), 56) == site.prefix56
