"""Unit tests for device models and their service surfaces."""

import random

import pytest

from repro.ipv6 import eui64, parse
from repro.scan.modules import (
    scan_amqp,
    scan_coap,
    scan_http,
    scan_https,
    scan_mqtt,
    scan_ssh,
)
from repro.tlslib.keys import derive_key
from repro.world import devices as dev

PREFIX = parse("2001:db8:100::")


@pytest.fixture()
def rng():
    return random.Random(42)


def place(network, device, rng, prefix=PREFIX):
    device.assign_address(prefix, rng)
    device.materialize(network)
    return device.address


SCAN_SRC = parse("2001:db8:f::1")


class TestAddressing:
    def test_eui64_embeds_mac(self, rng):
        mac = 0xB827EB000001
        device = dev.make_fritzbox(rng, 0, mac)
        device.assign_address(PREFIX, rng)
        assert eui64.extract_mac(device.address) == mac

    def test_privacy_changes_on_redraw(self, rng):
        device = dev.make_client_device(rng, 0, None, "v", addressing="privacy")
        first = device.assign_address(PREFIX, rng)
        second = device.assign_address(PREFIX, rng)
        assert first != second

    def test_eui64_stable_on_redraw(self, rng):
        device = dev.make_fritzbox(rng, 0, 0xB827EB000002)
        first = device.assign_address(PREFIX, rng)
        second = device.assign_address(PREFIX, rng)
        assert first == second

    def test_eui64_without_mac_rejected(self, rng):
        device = dev.Device(type_name="broken", addressing="eui64")
        with pytest.raises(ValueError):
            device.make_iid(rng)

    def test_unknown_mode_rejected(self, rng):
        device = dev.Device(type_name="broken", addressing="quantum")
        with pytest.raises(ValueError):
            device.make_iid(rng)

    def test_structured_small(self, rng):
        device = dev.make_dlink_router(rng, 0, 0x340804000001)
        device.assign_address(PREFIX, rng)
        assert device.address - device.prefix64 < 0x10000


class TestFritzbox(object):
    def test_web_on_both_ports(self, network, rng):
        device = dev.make_fritzbox(rng, 0, 0x3C3786000001)
        address = place(network, device, rng)
        http = scan_http(network, SCAN_SRC, address)
        assert http.ok and http.title == "FRITZ!Box"
        https = scan_https(network, SCAN_SRC, address)
        assert https.ok and https.tls.ok
        assert https.tls.self_signed
        assert https.title == "FRITZ!Box"

    def test_is_ntp_client(self, rng):
        assert dev.make_fritzbox(rng, 0, 1).is_ntp_client

    def test_unique_certs_per_device(self, network, rng):
        first = dev.make_fritzbox(rng, 1, 0x3C3786000001)
        second = dev.make_fritzbox(rng, 2, 0x3C3786000002)
        addr1 = place(network, first, rng)
        addr2 = place(network, second, rng, prefix=PREFIX + (1 << 64))
        fp1 = scan_https(network, SCAN_SRC, addr1).tls.fingerprint
        fp2 = scan_https(network, SCAN_SRC, addr2).tls.fingerprint
        assert fp1 != fp2


class TestDlink:
    def test_web_ui_but_no_ntp(self, network, rng):
        device = dev.make_dlink_router(rng, 0, 0x340804000001)
        address = place(network, device, rng)
        assert not device.is_ntp_client
        assert scan_http(network, SCAN_SRC, address).title == "D-LINK"
        https = scan_https(network, SCAN_SRC, address)
        assert https.ok and https.tls.ok and https.tls.self_signed


class TestClientDevice:
    def test_unreachable(self, network, rng):
        device = dev.make_client_device(rng, 0, 0x0C47C9000001, "Amazon")
        address = place(network, device, rng)
        assert not scan_http(network, SCAN_SRC, address).ok
        assert not scan_ssh(network, SCAN_SRC, address).ok
        assert device.is_ntp_client
        assert not device.has_services


class TestSshHost:
    def test_banner_and_key(self, network, rng):
        key = derive_key("test-host")
        device = dev.make_ssh_host(
            rng, 0, os_name="Debian", software="OpenSSH_9.2p1",
            comment="Debian-2+deb12u3", host_key=key, ntp=True)
        address = place(network, device, rng)
        grab = scan_ssh(network, SCAN_SRC, address)
        assert grab.ok
        assert grab.banner == "SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u3"
        assert grab.key_fingerprint == key.fingerprint


class TestBrokers:
    def test_open_mqtt(self, network, rng):
        device = dev.make_mqtt_broker(rng, 0, require_auth=False, tls=False,
                                      ntp=True, segment="consumer")
        address = place(network, device, rng)
        grab = scan_mqtt(network, SCAN_SRC, address)
        assert grab.ok and grab.open_access is True

    def test_secured_mqtt(self, network, rng):
        device = dev.make_mqtt_broker(rng, 0, require_auth=True, tls=False,
                                      ntp=True, segment="server")
        address = place(network, device, rng)
        grab = scan_mqtt(network, SCAN_SRC, address)
        assert grab.ok and grab.open_access is False

    def test_amqp_access_control(self, network, rng):
        device = dev.make_amqp_broker(rng, 0, require_auth=True, tls=False,
                                      ntp=False, segment="server")
        address = place(network, device, rng)
        grab = scan_amqp(network, SCAN_SRC, address)
        assert grab.ok and grab.open_access is False

    def test_mqtts_requires_cert(self, rng):
        device = dev.make_mqtt_broker(rng, 0, require_auth=False, tls=True,
                                      ntp=False, segment="server")
        assert device.mqtt.certificate is not None


class TestCoapDevice:
    def test_resources_advertised(self, network, rng):
        device = dev.make_coap_device(
            rng, 0, resources=("/castDeviceSearch", "/castSetup"),
            group="castdevice", ntp=True)
        address = place(network, device, rng)
        grab = scan_coap(network, SCAN_SRC, address)
        assert grab.ok
        assert grab.resources == ("/castDeviceSearch", "/castSetup")


class TestCdnFront:
    def test_tls_fails_without_sni(self, network, rng):
        front = dev.make_web_server(
            rng, 0, title=None, https=True, public_cert=True,
            hostname="front-0.cdn.sim", ntp=False, type_name="cdn_front",
            sni_required=True, segment="cdn")
        address = place(network, front, rng)
        grab = scan_https(network, SCAN_SRC, address)
        assert grab.ok            # the endpoint responded (alert)
        assert grab.tls is not None and not grab.tls.ok


class TestRehoming:
    def test_rehome_moves_services(self, network, rng):
        device = dev.make_fritzbox(rng, 0, 0x3C3786000009)
        old = place(network, device, rng)
        new_prefix = parse("2001:db8:200::")
        new = device.rehome(network, new_prefix, rng)
        assert new != old
        assert not scan_http(network, SCAN_SRC, old).ok
        assert scan_http(network, SCAN_SRC, new).ok

    def test_identity_stable_across_rehome(self, network, rng):
        device = dev.make_fritzbox(rng, 0, 0x3C378600000A)
        old = place(network, device, rng)
        old_fp = scan_https(network, SCAN_SRC, old).tls.fingerprint
        new = device.rehome(network, parse("2001:db8:201::"), rng)
        assert scan_https(network, SCAN_SRC, new).tls.fingerprint == old_fp

    def test_rotate_iid_only_for_privacy(self, network, rng):
        device = dev.make_fritzbox(rng, 0, 0x3C378600000B)
        place(network, device, rng)
        with pytest.raises(ValueError):
            device.rotate_iid(network, rng)
