"""Tests for the geo registry and actor mechanics not covered elsewhere."""

import pytest

from repro.core.actors import NtpSourcingActor, research_profile
from repro.net.clock import EventScheduler
from repro.ntp.client import NtpClient
from repro.ntp.pool import NtpPool
from repro.world.geo import COUNTRIES, DEPLOYMENT_COUNTRIES, default_geo


class TestGeoDatabase:
    def test_all_deployment_countries_exist(self):
        geo = default_geo()
        for code in DEPLOYMENT_COUNTRIES:
            country = geo.country(code)
            assert country.code == code

    def test_eleven_deployment_countries(self):
        assert len(DEPLOYMENT_COUNTRIES) == 11

    def test_india_dominates_demand(self):
        geo = default_geo()
        weights = geo.demand_weights()
        assert weights["IN"] == max(weights.values())

    def test_india_zone_least_competitive(self):
        """The paper's placement criterion: big client base, few
        existing servers."""
        geo = default_geo()
        india = geo.country("IN")
        netherlands = geo.country("NL")
        assert india.client_weight / (india.competing_servers + 1) > \
            10 * netherlands.client_weight / (netherlands.competing_servers + 1)

    def test_unknown_country_raises(self):
        with pytest.raises(KeyError):
            default_geo().country("ZZ")

    def test_codes_unique(self):
        codes = [country.code for country in COUNTRIES]
        assert len(set(codes)) == len(codes)

    def test_continents_sane(self):
        for country in COUNTRIES:
            assert country.continent in {"EU", "AS", "NA", "SA", "AF", "OC"}


class TestActorMechanics:
    @pytest.fixture()
    def setup(self, fresh_world):
        world = fresh_world
        pool = NtpPool(world.network)
        scheduler = EventScheduler(world.clock)
        clouds = [s for s in world.asdb.systems
                  if s.name.startswith("HyperCloud")]
        actor = NtpSourcingActor(
            world, pool, scheduler, research_profile("unit"),
            server_base=world.allocate_prefix64(clouds[0].number),
            scanner_base=world.allocate_prefix64(clouds[1].number),
            zones=["us"], seed=7)
        return world, pool, scheduler, actor

    def test_servers_registered_in_pool(self, setup):
        world, pool, scheduler, actor = setup
        assert len(actor.servers) == 15
        operators = {server.operator for server in pool.servers}
        assert operators == {"unit"}

    def test_capture_schedules_scan(self, setup):
        world, pool, scheduler, actor = setup
        client = NtpClient(world.network, int("20010db8000011110000000000000001", 16))
        assert client.query(actor.servers[0].address) is not None
        assert scheduler.pending == 1  # the scan event
        scheduler.run_until(world.clock.now() + 3600)
        assert actor.scans_launched == 1
        assert actor.probes_sent > 0

    def test_repeat_capture_no_duplicate_scan(self, setup):
        world, pool, scheduler, actor = setup
        address = int("20010db8000011110000000000000002", 16)
        client = NtpClient(world.network, address)
        client.query(actor.servers[0].address)
        client.query(actor.servers[1].address)
        assert scheduler.pending == 1

    def test_actor_servers_serve_valid_time(self, setup):
        """Actors must be *working* pool members, or the monitor would
        evict them (and the paper's actors did serve time)."""
        world, pool, scheduler, actor = setup
        client = NtpClient(world.network, int("20010db8000011110000000000000003", 16))
        result = client.query(actor.servers[0].address)
        assert result is not None and result.stratum == 2

    def test_probe_cap_bounds_events(self, setup):
        """The 1011-port research profile caps per-address probes."""
        world, pool, scheduler, actor = setup
        client = NtpClient(world.network, int("20010db8000011110000000000000004", 16))
        client.query(actor.servers[0].address)
        scheduler.run_until(world.clock.now() + 7200)
        assert actor.probes_sent <= 65
