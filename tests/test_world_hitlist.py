"""Unit tests for the TUM-like hitlist builder."""

import pytest

from repro.ipv6 import iid as iidmod
from repro.world.hitlist import HitlistConfig, build_hitlist
from repro.world.population import build_world
from tests.conftest import small_world_config


@pytest.fixture(scope="module")
def built(world):
    return build_hitlist(world), world


class TestComposition:
    def test_public_subset_of_full(self, built):
        hitlist, world = built
        assert hitlist.public <= hitlist.full
        assert hitlist.public_size < hitlist.full_size

    def test_public_entries_alive(self, built):
        hitlist, world = built
        for value in hitlist.public:
            host = world.network.host(value)
            assert host is not None and host.reachable

    def test_dns_devices_mostly_included(self, built):
        hitlist, world = built
        named = [d.address for d in world.dns_named()]
        included = sum(1 for a in named if a in hitlist.full)
        assert included >= 0.9 * len(named)

    def test_cdn_fronts_all_included(self, built):
        hitlist, world = built
        for front in world.devices_of_type("cdn_front"):
            assert front.address in hitlist.full

    def test_privacy_clients_excluded(self, built):
        """End-user devices without DNS are structurally invisible."""
        hitlist, world = built
        clients = [d for d in world.devices if d.type_name == "client"]
        leaked = sum(1 for d in clients if d.address in hitlist.full)
        assert leaked == 0

    def test_broad_as_coverage(self, built):
        hitlist, world = built
        covered = {asn for value in hitlist.full
                   if (asn := world.asdb.lookup_asn(value)) is not None}
        assert len(covered) == len(world.asdb.systems)

    def test_structured_bias(self, built):
        """The hitlist must skew towards structured IIDs (Figure 1)."""
        hitlist, world = built
        profile = iidmod.profile(hitlist.full)
        assert profile.structured_share > 0.8


class TestConfig:
    def test_no_routers(self, world):
        bare = build_hitlist(world, HitlistConfig(routers_per_as=0,
                                                  tga_per_seed=0))
        rich = build_hitlist(world, HitlistConfig())
        assert bare.full_size < rich.full_size

    def test_deterministic(self, world):
        assert build_hitlist(world).full == build_hitlist(world).full

    def test_seed_changes_tga(self, world):
        first = build_hitlist(world, HitlistConfig(seed=1))
        second = build_hitlist(world, HitlistConfig(seed=2))
        assert first.full != second.full


class TestStaleness:
    def test_churn_invalidates_entries(self):
        """Rotating prefixes kill hitlist entries — the reason static
        lists are useless for end-user devices (Section 6)."""
        world = build_world(small_world_config())
        hitlist = build_hitlist(world)
        alive_before = sum(
            1 for v in hitlist.public if world.network.host(v) is not None)
        for _ in range(14):
            world.churn.step_day()
        alive_after = sum(
            1 for v in hitlist.public if world.network.host(v) is not None)
        assert alive_after < alive_before
