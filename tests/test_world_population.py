"""Unit tests for the world generator."""

from collections import Counter


from repro.world.population import build_world
from tests.conftest import small_world_config


class TestDeterminism:
    def test_same_seed_same_world(self):
        first = build_world(small_world_config())
        second = build_world(small_world_config())
        assert len(first.devices) == len(second.devices)
        assert [d.address for d in first.devices] == \
            [d.address for d in second.devices]

    def test_different_seed_different_world(self):
        first = build_world(small_world_config())
        second = build_world(small_world_config(seed=99))
        assert [d.address for d in first.devices] != \
            [d.address for d in second.devices]


class TestComposition:
    def test_every_key_device_type_present(self, world):
        types = {device.type_name for device in world.devices}
        for expected in ["fritzbox", "dlink", "client", "generic_cpe",
                         "web_server", "cdn_front", "ssh_ubuntu",
                         "ssh_debian", "ssh_raspbian", "ssh_freebsd",
                         "mqtt_broker", "amqp_broker", "coap_castdevice"]:
            assert expected in types, f"missing device type {expected}"

    def test_scale_controls_size(self):
        small = build_world(small_world_config(scale=0.05))
        large = build_world(small_world_config(scale=0.2))
        assert len(large.devices) > 2 * len(small.devices)

    def test_clients_dominate_ntp_population(self, world):
        """Most NTP speakers must be unscannable end-user gear (the
        root cause of the paper's low hit rate)."""
        clients = world.ntp_clients()
        unreachable = [d for d in clients if not d.reachable]
        assert len(unreachable) > len(clients) / 2

    def test_fritz_concentration_in_germany(self, world):
        by_country = Counter(d.country for d in world.devices
                             if d.type_name == "fritzbox")
        assert by_country["DE"] == max(by_country.values())

    def test_dlink_never_ntp(self, world):
        for device in world.devices_of_type("dlink"):
            assert not device.is_ntp_client

    def test_castdevices_never_dns(self, world):
        for device in world.devices_of_type("coap_castdevice"):
            assert device.labels.get("dns") != "yes"

    def test_cdn_fronts_require_sni(self, world):
        fronts = world.devices_of_type("cdn_front")
        assert fronts
        for front in fronts:
            assert front.web.sni_required
            assert not front.is_ntp_client

    def test_raspbian_mostly_ntp(self, world):
        pis = world.devices_of_type("ssh_raspbian")
        assert pis
        assert all(pi.is_ntp_client for pi in pis)


class TestPlacement:
    def test_every_device_routed(self, world):
        for device in world.devices:
            assert world.asdb.lookup_asn(device.address) == device.asn

    def test_device_country_matches_as(self, world):
        for device in world.devices:
            assert world.asdb.system(device.asn).country == device.country

    def test_addresses_unique(self, world):
        addresses = [device.address for device in world.devices]
        assert len(set(addresses)) == len(addresses)

    def test_all_devices_are_hosts(self, world):
        for device in world.devices:
            host = world.network.host(device.address)
            assert host is not None
            assert host.reachable == device.reachable

    def test_premises_devices_share_56(self, world):
        for site in world.premises[:50]:
            for device in site.devices:
                assert device.address >> 72 == site.prefix56 >> 72


class TestIdentityFabric:
    def test_fresh_macs_unique(self, world):
        macs = [d.mac for d in world.devices
                if d.mac is not None and d.labels.get("mirror") != "yes"]
        assert len(set(macs)) == len(macs)

    def test_fritz_mirror_shares_identity(self, world):
        mirrors = [d for d in world.devices
                   if d.labels.get("mirror") == "yes"]
        assert mirrors
        primaries = {d.mac: d for d in world.devices
                     if d.type_name == "fritzbox"
                     and d.labels.get("mirror") != "yes"}
        for mirror in mirrors:
            primary = primaries[mirror.mac]
            assert mirror.web is primary.web
            assert (mirror.address >> 72) == (primary.address >> 72)  # /56
            assert (mirror.address >> 64) != (primary.address >> 64)  # /64

    def test_ssh_key_reuse_exists(self):
        """The key pools must produce some shared host keys."""
        world = build_world(small_world_config(scale=0.3))
        keys = [d.ssh.host_key.fingerprint for d in world.devices
                if d.ssh is not None]
        assert len(set(keys)) < len(keys)

    def test_portal_certs_shared_by_title(self):
        world = build_world(small_world_config(scale=0.5))
        by_title = {}
        for device in world.devices_of_type("consumer_portal"):
            if device.web.certificate is None:
                continue
            by_title.setdefault(device.web.title, set()).add(
                device.web.certificate.fingerprint)
        shared = [fps for fps in by_title.values() if len(fps) == 1]
        multi = {title: fps for title, fps in by_title.items()}
        # Every title maps to exactly one certificate (white-label image).
        assert all(len(fps) == 1 for fps in multi.values())
        assert shared
