"""Tests for the entropy-based target generation algorithm."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ipv6 import parse, prefix
from repro.world.tga import (
    TgaEvaluation,
    _nybble,
    _with_nybble,
    train,
)


class TestNybbleOps:
    def test_nybble_extraction(self):
        value = parse("2001:db8::f")
        assert _nybble(value, 0) == 0x2
        assert _nybble(value, 3) == 0x1
        assert _nybble(value, 31) == 0xF

    def test_with_nybble_roundtrip(self):
        value = parse("2001:db8::1")
        changed = _with_nybble(value, 31, 0x9)
        assert _nybble(changed, 31) == 0x9
        assert _with_nybble(changed, 31, 0x1) == value

    @given(st.integers(min_value=0, max_value=2**128 - 1),
           st.integers(min_value=0, max_value=31),
           st.integers(min_value=0, max_value=15))
    def test_with_nybble_property(self, value, index, nybble):
        changed = _with_nybble(value, index, nybble)
        assert _nybble(changed, index) == nybble
        for other in range(0, 32, 5):
            if other != index:
                assert _nybble(changed, other) == _nybble(value, other)


class TestTraining:
    def test_fixed_nybbles_detected(self):
        seeds = [parse("2001:db8::") + i for i in range(1, 17)]
        tga = train(seeds)
        segments = tga.segments
        assert segments["fixed"] > 20  # the shared prefix + zero run
        assert tga.models[0].segment == "fixed"  # the leading '2'

    def test_structured_seeds_low_entropy(self):
        structured = [parse("2001:db8::") + i for i in range(1, 10)]
        random_iids = [parse("2001:db8::") | random.Random(i).getrandbits(64)
                       for i in range(200)]
        assert train(structured).total_entropy < \
            train(random_iids).total_entropy

    def test_empty_seed_set_rejected(self):
        with pytest.raises(ValueError):
            train([])

    def test_deduplicates_seeds(self):
        tga = train([1, 1, 2])
        assert tga.seeds == (1, 2)


class TestGeneration:
    def test_candidates_distinct_and_new(self):
        seeds = [parse("2001:db8::") + i for i in range(1, 40)]
        tga = train(seeds)
        candidates = tga.generate(50)
        assert len(candidates) == len(set(candidates))
        assert not set(candidates) & set(seeds)

    def test_candidates_share_fixed_prefix(self):
        seeds = [parse("2001:db8:7::") + i for i in range(1, 40)]
        tga = train(seeds)
        for candidate in tga.generate(30):
            assert prefix(candidate, 48) == parse("2001:db8:7::")

    def test_deterministic_by_seed(self):
        seeds = [parse("2001:db8::") + i for i in range(1, 20)]
        assert train(seeds, seed=5).generate(10) == \
            train(seeds, seed=5).generate(10)
        assert train(seeds, seed=5).generate(10) != \
            train(seeds, seed=6).generate(10)

    def test_count_validation(self):
        tga = train([1, 2, 3])
        with pytest.raises(ValueError):
            tga.generate(0)

    def test_saturation_stops(self):
        """A tiny structured space cannot yield unlimited candidates."""
        seeds = [parse("2001:db8::1"), parse("2001:db8::2")]
        tga = train(seeds)
        candidates = tga.generate(10_000)
        assert len(candidates) < 10_000

    def test_inherits_seed_bias(self):
        """The TGA's defining property: candidates look like the seeds
        (structured seeds -> structured candidates)."""
        from repro.ipv6.iid import classify_iid

        seeds = [parse("2001:db8::") + i for i in range(1, 60)]
        tga = train(seeds)
        candidates = tga.generate(40)
        structured = sum(
            1 for candidate in candidates
            if classify_iid(candidate) in
            ("zero", "low-byte", "low-two-bytes"))
        assert structured > len(candidates) * 0.8


class TestEvaluation:
    def test_evaluate_on_world(self, world):
        from repro.ipv6 import parse as _parse
        from repro.scan.engine import EngineConfig, ScanEngine
        from repro.world.tga import evaluate

        seeds = [device.address for device in world.dns_named()]
        tga = train(seeds)
        engine = ScanEngine(world.network, _parse("2001:db8:aaaa::1"),
                            EngineConfig(drive_clock=False))
        evaluation, results = evaluate(tga, engine, 200)
        assert evaluation.candidates <= 200
        assert 0.0 <= evaluation.hit_rate <= 1.0
        assert results.targets_seen == evaluation.candidates

    def test_hit_rate_zero_candidates(self):
        evaluation = TgaEvaluation(seeds=1, candidates=0, responsive=0)
        assert evaluation.hit_rate == 0.0
